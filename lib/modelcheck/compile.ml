open Cgraph

exception Unbound_variable of Fo.Formula.var

(* Compiled code: a closure tree over a flat int slot array.  [env] maps
   slot index -> vertex (free variables first, then one slot per
   quantifier nesting level); [nodes] batches quantifier-node visits in
   a plain local ref exactly like the reference walker, so the flushed
   counter totals come out identical.

   The closures are pure with respect to shared state — they read the
   (immutable) graph and mutate only the caller-provided [env] — so one
   compiled formula is safely shared across domains as long as each
   caller brings its own slot array (the counted entry points below
   allocate a fresh one per call). *)
type code = int array -> int ref -> bool

type t = {
  graph : Graph.t;
  vars : Fo.Formula.var list;
  k : int;
  nslots : int;
  code : code;
}

(* same registry handles as the reference walker in [Eval]: compiled and
   interpreted evaluation contribute to one series *)
let eval_calls = Obs.Metric.counter "modelcheck.eval.calls"
let quantifier_nodes = Obs.Metric.counter "modelcheck.eval.quantifier_nodes"

let compiles_c = Obs.Metric.counter "modelcheck.compile.compiles"
let cache_hits_c = Obs.Metric.counter "modelcheck.compile.cache_hits"

(* The static environment maps a variable to its slot.  It is an assoc
   list with inner bindings in front, so quantifier shadowing — and,
   on the permissive path, a repeated free variable where the {e last}
   occurrence wins, matching the iterated-map-insert semantics of the
   reference enumerators — falls out of [List.assoc_opt]. *)
let lower g ~senv ~first_bound f =
  let n = Graph.order g in
  let max_slots = ref first_bound in
  let rec go senv depth (f : Fo.Formula.t) : code =
    match f with
    | True -> fun _ _ -> true
    | False -> fun _ _ -> false
    | Atom (Eq (x, y)) -> (
        match (List.assoc_opt x senv, List.assoc_opt y senv) with
        | Some i, Some j -> fun env _ -> env.(i) = env.(j)
        | None, _ -> fun _ _ -> raise (Unbound_variable x)
        | _, None -> fun _ _ -> raise (Unbound_variable y))
    | Atom (Edge (x, y)) -> (
        match (List.assoc_opt x senv, List.assoc_opt y senv) with
        | Some i, Some j -> fun env _ -> Graph.mem_edge g env.(i) env.(j)
        | None, _ -> fun _ _ -> raise (Unbound_variable x)
        | _, None -> fun _ _ -> raise (Unbound_variable y))
    | Atom (Color (c, x)) -> (
        match List.assoc_opt x senv with
        | Some i ->
            let test = Graph.color_test g c in
            fun env _ -> test env.(i)
        | None -> fun _ _ -> raise (Unbound_variable x))
    | Not f ->
        let c = go senv depth f in
        fun env nd -> not (c env nd)
    | And fs -> (
        let cs = Array.of_list (List.map (go senv depth) fs) in
        match Array.length cs with
        | 0 -> fun _ _ -> true
        | 1 -> cs.(0)
        | 2 ->
            let a = cs.(0) and b = cs.(1) in
            fun env nd -> a env nd && b env nd
        | len ->
            fun env nd ->
              let rec all i = i >= len || (cs.(i) env nd && all (i + 1)) in
              all 0)
    | Or fs -> (
        let cs = Array.of_list (List.map (go senv depth) fs) in
        match Array.length cs with
        | 0 -> fun _ _ -> false
        | 1 -> cs.(0)
        | 2 ->
            let a = cs.(0) and b = cs.(1) in
            fun env nd -> a env nd || b env nd
        | len ->
            fun env nd ->
              let rec any i = i < len && (cs.(i) env nd || any (i + 1)) in
              any 0)
    | Implies (a, b) ->
        let ca = go senv depth a and cb = go senv depth b in
        fun env nd -> (not (ca env nd)) || cb env nd
    | Iff (a, b) ->
        let ca = go senv depth a and cb = go senv depth b in
        fun env nd -> ca env nd = cb env nd
    | Exists (x, body) ->
        let s = depth in
        if s + 1 > !max_slots then max_slots := s + 1;
        let c = go ((x, s) :: senv) (depth + 1) body in
        fun env nd ->
          incr nd;
          Guard.tick Guard.Eval_step;
          let rec try_from v =
            v < n
            && ((env.(s) <- v;
                 c env nd)
               || try_from (v + 1))
          in
          try_from 0
    | Forall (x, body) ->
        let s = depth in
        if s + 1 > !max_slots then max_slots := s + 1;
        let c = go ((x, s) :: senv) (depth + 1) body in
        fun env nd ->
          incr nd;
          Guard.tick Guard.Eval_step;
          let rec all_from v =
            v >= n
            || ((env.(s) <- v;
                 c env nd)
               && all_from (v + 1))
          in
          all_from 0
    | CountGe (t, x, body) ->
        let s = depth in
        if s + 1 > !max_slots then max_slots := s + 1;
        let c = go ((x, s) :: senv) (depth + 1) body in
        fun env nd ->
          incr nd;
          Guard.tick Guard.Eval_step;
          let rec count_from v found =
            found >= t
            || (v < n
               &&
               (env.(s) <- v;
                count_from (v + 1) (if c env nd then found + 1 else found)))
          in
          count_from 0 0
  in
  let code = go senv first_bound f in
  (code, !max_slots)

let stage ~checked g ~vars f =
  Obs.Metric.incr compiles_c;
  let k = List.length vars in
  if checked then begin
    let seen = Hashtbl.create (2 * k) in
    List.iter
      (fun x ->
        if Hashtbl.mem seen x then
          invalid_arg
            ("Modelcheck.Compile: duplicate binding for variable " ^ x)
        else Hashtbl.add seen x ())
      vars
  end;
  (* fold left with prepend: a repeated name ends up with its last
     occurrence in front, which is what the permissive path wants *)
  let senv =
    List.fold_left
      (fun (i, acc) x -> (i + 1, (x, i) :: acc))
      (0, []) vars
    |> snd
  in
  let code, nslots = lower g ~senv ~first_bound:k f in
  { graph = g; vars; k; nslots; code }

let compile g ~vars f = stage ~checked:true g ~vars f
let compile_shadow g ~vars f = stage ~checked:false g ~vars f

let graph t = t.graph
let vars t = t.vars
let arity t = t.k
let slots t = t.nslots
let run t env nodes = t.code env nodes

let flush_nodes nodes =
  if !nodes > 0 then begin
    Obs.Metric.add quantifier_nodes !nodes;
    nodes := 0
  end

let holds_tuple t u =
  if Array.length u <> t.k then
    invalid_arg "Eval.holds_tuple: variable/tuple length mismatch";
  Obs.Metric.incr eval_calls;
  let env = Array.make (max t.nslots 1) 0 in
  Array.blit u 0 env 0 t.k;
  let nodes = ref 0 in
  match t.code env nodes with
  | r ->
      flush_nodes nodes;
      r
  | exception e ->
      flush_nodes nodes;
      raise e

(* ------------------------------------------------------------------ *)
(* Per-domain compilation cache                                        *)
(* ------------------------------------------------------------------ *)

(* Keyed on graph identity (uid), the variable list and the formula.
   Domain-local so the lookup takes no lock; bounded so a pathological
   caller cycling through formulas cannot leak closures. *)

let cache_cap = 128

type cache_key = int * Fo.Formula.var list * Fo.Formula.t

let cache : (cache_key, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let cached g ~vars f =
  let tbl = Domain.DLS.get cache in
  let key = (Graph.uid g, vars, f) in
  match Hashtbl.find_opt tbl key with
  | Some c ->
      Obs.Metric.incr cache_hits_c;
      c
  | None ->
      let c = compile g ~vars f in
      if Hashtbl.length tbl >= cache_cap then Hashtbl.reset tbl;
      Hashtbl.add tbl key c;
      c
