(** Staged first-order evaluation: compile a formula once, run it on
    many tuples.

    The reference walker in {!Eval} re-traverses the AST and rebuilds a
    string-keyed environment map on every call; for the learners, which
    evaluate the {e same} hypothesis formula across every sample tuple,
    that interpretive overhead dominates.  [compile] lowers a formula
    into a tree of closures over a flat int slot array — variables are
    resolved to array indices, colours to bitset tests, quantifier
    domains to the (fixed) graph order — so a per-tuple evaluation does
    no name lookup and allocates only the slot array.

    Semantics, including evaluation order, short-circuiting, laziness
    of unbound-variable and invalid-vertex errors, [Guard.tick]
    checkpoints (one per quantifier-node visit) and the batched
    [modelcheck.eval.*] counters, match {!Eval.holds} exactly; the test
    suite pins compiled ≡ reference on random formulas, graphs and
    environments.

    A compiled value is immutable and safe to share across domains:
    each evaluation works on a caller-provided (or per-call) slot
    array. *)

open Cgraph

exception Unbound_variable of Fo.Formula.var
(** Same exception as {!Eval.Unbound_variable} (re-exported there):
    raised {e when the offending atom is reached}, not at compile time,
    matching the reference walker's laziness. *)

type t
(** A formula compiled against one graph and one free-variable list. *)

val compile : Graph.t -> vars:Fo.Formula.var list -> Fo.Formula.t -> t
(** [compile g ~vars f] stages [f] with free variables bound
    positionally to [vars].  Duplicate-name validation happens {e here},
    once, so the per-tuple path is check-free.
    @raise Invalid_argument on a duplicate variable in [vars]. *)

val compile_shadow : Graph.t -> vars:Fo.Formula.var list -> Fo.Formula.t -> t
(** Like {!compile} but a repeated variable name shadows (the last
    occurrence wins) — the iterated-map-insert semantics the
    {!Eval.answers} enumerators historically had. *)

val cached : Graph.t -> vars:Fo.Formula.var list -> Fo.Formula.t -> t
(** Memoising {!compile}: a per-domain bounded cache keyed on graph
    identity ({!Graph.uid}), variable list and formula.  Hits are
    counted on [modelcheck.compile.cache_hits].  Lock-free (the cache
    is domain-local). *)

(** {1 Running} *)

val holds_tuple : t -> Graph.Tuple.t -> bool
(** [holds_tuple c ū] binds the compiled free variables positionally to
    [ū] and evaluates.  Counts one [modelcheck.eval.calls]; allocates a
    fresh slot array, so it is safe to call concurrently on a shared
    compiled value.
    @raise Invalid_argument on an arity mismatch. *)

val run : t -> int array -> int ref -> bool
(** Low-level entry for enumerators: evaluate with a caller-owned slot
    array (length at least {!slots}; free variables already written at
    slots [0 .. arity-1]) and a caller-owned quantifier-node batch ref.
    Records no counters; the caller flushes the batch ref into
    [modelcheck.eval.quantifier_nodes] itself. *)

(** {1 Inspection} *)

val graph : t -> Graph.t
val vars : t -> Fo.Formula.var list

val arity : t -> int
(** Number of free-variable slots, [List.length (vars t)]. *)

val slots : t -> int
(** Total slot count: arity plus one slot per quantifier nesting
    level. *)
