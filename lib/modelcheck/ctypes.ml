open Cgraph

type ty = int

let equal (a : ty) (b : ty) = a = b
let compare (a : ty) (b : ty) = Int.compare a b
let hash (a : ty) = a
let pp ppf (a : ty) = Format.fprintf ppf "c#%d" a

(* ------------------------------------------------------------------ *)
(* Registry (separate from the plain-type registry; sharded, see       *)
(* Intern)                                                             *)
(* ------------------------------------------------------------------ *)

let dummy_sig : Types.atomsig =
  { Types.sig_arity = 0; eqs = []; edgs = []; cols = [||] }

module Reg = Intern.Make (struct
  type key = Types.atomsig * (ty * int) list option

  let dummy = (dummy_sig, None)
  let prefix = "modelcheck.ctypes"
end)

let intern = Reg.intern
let rank = Reg.rank

let arity (t : ty) =
  let sg, _ = Reg.key t in
  sg.Types.sig_arity

let node (t : ty) = Reg.key t

type table_stats = Reg.stats = { live : int; bytes : int }

let table_stats = Reg.stats
let reset_tables = Reg.reset

(* ------------------------------------------------------------------ *)
(* Computation                                                         *)
(* ------------------------------------------------------------------ *)

type ctx = {
  g : Graph.t;
  memo : (int * int * Graph.Tuple.t, ty) Hashtbl.t;
  lmemo : (int * int * int * Graph.Tuple.t, ty) Hashtbl.t;
}

let make_ctx g = { g; memo = Hashtbl.create 256; lmemo = Hashtbl.create 256 }

let rec ctp ctx ~q ~tmax u =
  if q < 0 then invalid_arg "Ctypes.ctp: negative quantifier rank";
  if tmax < 1 then invalid_arg "Ctypes.ctp: threshold cap must be >= 1";
  match Hashtbl.find_opt ctx.memo (q, tmax, u) with
  | Some t -> t
  | None ->
      let sg = Types.atomic_signature ctx.g u in
      let t =
        if q = 0 then intern (sg, None) 0
        else begin
          let counts : (ty, int) Hashtbl.t = Hashtbl.create 16 in
          for w = 0 to Graph.order ctx.g - 1 do
            let child = ctp ctx ~q:(q - 1) ~tmax (Graph.Tuple.append u [| w |]) in
            let c = Option.value (Hashtbl.find_opt counts child) ~default:0 in
            Hashtbl.replace counts child (min tmax (c + 1))
          done;
          let children =
            Hashtbl.fold (fun child c acc -> (child, c) :: acc) counts []
            |> List.sort (fun (a, ca) (b, cb) ->
                   match Int.compare a b with 0 -> Int.compare ca cb | c -> c)
          in
          intern (sg, Some children) q
        end
      in
      Hashtbl.replace ctx.memo (q, tmax, u) t;
      t

let cltp ctx ~q ~tmax ~r u =
  if r < 0 then invalid_arg "Ctypes.cltp: negative radius";
  match Hashtbl.find_opt ctx.lmemo (q, tmax, r, u) with
  | Some t -> t
  | None ->
      let emb = Ops.neighborhood ctx.g ~r u in
      let u' =
        Array.map
          (fun v ->
            match emb.Ops.to_sub v with Some v' -> v' | None -> assert false)
          u
      in
      let t = ctp (make_ctx emb.Ops.graph) ~q ~tmax u' in
      Hashtbl.replace ctx.lmemo (q, tmax, r, u) t;
      t

let partition ctx ~q ~tmax tuples =
  let tbl : (ty, Graph.Tuple.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun u ->
      let t = ctp ctx ~q ~tmax u in
      match Hashtbl.find_opt tbl t with
      | Some cell -> cell := u :: !cell
      | None ->
          Hashtbl.replace tbl t (ref [ u ]);
          order := t :: !order)
    tuples;
  List.rev_map (fun t -> (t, List.rev !(Hashtbl.find tbl t))) !order

let count_types g ~q ~tmax ~k =
  let ctx = make_ctx g in
  partition ctx ~q ~tmax (Graph.Tuple.all ~n:(Graph.order g) ~k) |> List.length

(* ------------------------------------------------------------------ *)
(* Counting Hintikka formulas                                          *)
(* ------------------------------------------------------------------ *)

let hintikka ~colors ~tmax theta =
  let atomic_formula sg vars =
    (* reuse the plain-type atomic rendering through a throwaway plain
       intern?  No — rebuild it here from the signature directly. *)
    let var = Array.of_list vars in
    let k = sg.Types.sig_arity in
    let conjuncts = ref [] in
    let push f = conjuncts := f :: !conjuncts in
    for i = 0 to k - 1 do
      for j = i + 1 to k - 1 do
        let e = Fo.Formula.eq var.(i) var.(j) in
        push (if List.mem (i, j) sg.Types.eqs then e else Fo.Formula.not_ e);
        let a = Fo.Formula.edge var.(i) var.(j) in
        push (if List.mem (i, j) sg.Types.edgs then a else Fo.Formula.not_ a)
      done
    done;
    for i = 0 to k - 1 do
      let held = sg.Types.cols.(i) in
      List.iter
        (fun c ->
          if not (List.mem c colors) then
            invalid_arg
              (Printf.sprintf "Ctypes.hintikka: colour %S not in vocabulary" c))
        held;
      List.iter
        (fun c ->
          let a = Fo.Formula.color c var.(i) in
          push (if List.mem c held then a else Fo.Formula.not_ a))
        colors
    done;
    Fo.Formula.and_ (List.rev !conjuncts)
  in
  let rec go theta vars =
    let sg, children = node theta in
    let atomic = atomic_formula sg vars in
    match children with
    | None -> atomic
    | Some kids ->
        let y = Printf.sprintf "x%d" (List.length vars + 1) in
        let vars' = vars @ [ y ] in
        let multiplicities =
          List.concat_map
            (fun (kid, c) ->
              let lower = Fo.Formula.count_ge c y (go kid vars') in
              if c < tmax then
                [
                  lower;
                  Fo.Formula.not_ (Fo.Formula.count_ge (c + 1) y (go kid vars'));
                ]
              else [ lower ])
            kids
        in
        let exhausted =
          Fo.Formula.forall y
            (Fo.Formula.or_ (List.map (fun (kid, _) -> go kid vars') kids))
        in
        Fo.Formula.and_ ((atomic :: multiplicities) @ [ exhausted ])
  in
  go theta (Hintikka.variables (arity theta))
