(** Canonical counting types — the FOC extension proposed in the paper's
    conclusion (first-order logic with counting quantifiers
    [∃^{>=t} x. φ]; cf. van Bergerem, LICS 2019).

    The counting [q]-type with threshold cap [tmax] of a tuple records the
    atomic signature together with, for each distinct counting
    [(q-1)]-type of the one-point extensions, {e how many} extensions
    realise it — capped at [tmax]:

    {v ctp_q^tmax(G, ū) ~ (atp(G, ū), { θ ↦ min(tmax, #w with ctp(ūw)=θ) }) v}

    Two tuples get the same id iff they satisfy the same FOC formulas of
    quantifier rank [q] whose thresholds are at most [tmax].  At
    [tmax = 1] counting types coincide with the plain types of {!Types}
    (multiplicity collapses to membership — tested in the suite). *)

open Cgraph

type ty = private int
(** Canonical counting-type id (separate id space from {!Types.ty}). *)

val equal : ty -> ty -> bool
val compare : ty -> ty -> int
val hash : ty -> int
val pp : Format.formatter -> ty -> unit

val rank : ty -> int
val arity : ty -> int

type ctx

val make_ctx : Graph.t -> ctx

val ctp : ctx -> q:int -> tmax:int -> Graph.Tuple.t -> ty
(** [ctp ctx ~q ~tmax ū]: the counting [q]-type with thresholds up to
    [tmax].  Memoised per context.  @raise Invalid_argument if
    [tmax < 1]. *)

val cltp : ctx -> q:int -> tmax:int -> r:int -> Graph.Tuple.t -> ty
(** Local counting type: [ctp] computed in the induced [r]-neighbourhood
    of the tuple. *)

val partition : ctx -> q:int -> tmax:int -> Graph.Tuple.t list -> (ty * Graph.Tuple.t list) list
(** Group tuples by counting type (first-occurrence class order). *)

val count_types : Graph.t -> q:int -> tmax:int -> k:int -> int
(** Number of distinct counting types of [k]-tuples realised. *)

val node : ty -> Types.atomsig * (ty * int) list option
(** Decompose: atomic signature, and [None] (rank 0) or the sorted list of
    (child counting type, capped multiplicity) pairs. *)

val hintikka : colors:string list -> tmax:int -> ty -> Fo.Formula.t
(** The counting Hintikka formula of a type: for every graph [H] over a
    sub-vocabulary of [colors] and tuple [v̄],
    [H |= hintikka θ (v̄)  iff  ctp(H, v̄) = θ].  Uses [atleast]
    quantifiers; quantifier rank is exactly the rank of the type. *)

(** {1 Registry lifecycle} *)

type table_stats = { live : int  (** interned types *); bytes : int }

val table_stats : unit -> table_stats
(** Registry size; [bytes] matches the [modelcheck.ctypes.table_bytes]
    gauge. *)

val reset_tables : unit -> unit
(** Empty the registry and invalidate all per-domain shards; see
    {!Types.reset_tables} for the quiescence contract. *)
