open Cgraph

type env = (Fo.Formula.var * Graph.vertex) list

exception Unbound_variable of Fo.Formula.var

module VMap = Map.Make (String)

(* "calls" counts top-level evaluations (one per tuple checked);
   "quantifier_nodes" counts quantifier visits inside the recursion.
   Boolean/atom nodes are deliberately NOT counted: they are a handful
   of machine instructions each, and even a branch-on-atomic there shows
   up in the disabled-overhead budget.

   Quantifier visits are batched in a plain local ref and flushed to
   the sharded sink once per entry point: on a dense formula the
   recursion visits a quantifier node every ~100 ns, and even the
   sharded record path (atomic load + DLS get + array store) is visible
   at that rate — E19's sink ratio is the gate.  Guard.tick stays
   per-node: fuel accounting is load-bearing for the focost envelopes
   and must not coarsen.  The flush is exception-safe because a tick
   can unwind to the enclosing Guard.run mid-recursion, and counter
   totals must come out identical either way. *)
let eval_calls = Obs.Metric.counter "modelcheck.eval.calls"
let quantifier_nodes = Obs.Metric.counter "modelcheck.eval.quantifier_nodes"

let lookup env x =
  match VMap.find_opt x env with
  | Some v -> v
  | None -> raise (Unbound_variable x)

let rec eval_n g nodes env (f : Fo.Formula.t) =
  match f with
  | True -> true
  | False -> false
  | Atom (Eq (x, y)) -> lookup env x = lookup env y
  | Atom (Edge (x, y)) -> Graph.mem_edge g (lookup env x) (lookup env y)
  | Atom (Color (c, x)) -> Graph.has_color g c (lookup env x)
  | Not f -> not (eval_n g nodes env f)
  | And fs -> List.for_all (eval_n g nodes env) fs
  | Or fs -> List.exists (eval_n g nodes env) fs
  | Implies (a, b) -> (not (eval_n g nodes env a)) || eval_n g nodes env b
  | Iff (a, b) -> eval_n g nodes env a = eval_n g nodes env b
  | Exists (x, body) ->
      incr nodes;
      Guard.tick Guard.Eval_step;
      let n = Graph.order g in
      let rec try_from v =
        v < n && (eval_n g nodes (VMap.add x v env) body || try_from (v + 1))
      in
      try_from 0
  | Forall (x, body) ->
      incr nodes;
      Guard.tick Guard.Eval_step;
      let n = Graph.order g in
      let rec all_from v =
        v >= n || (eval_n g nodes (VMap.add x v env) body && all_from (v + 1))
      in
      all_from 0
  | CountGe (t, x, body) ->
      incr nodes;
      Guard.tick Guard.Eval_step;
      let n = Graph.order g in
      let rec count_from v found =
        found >= t
        || (v < n
           && count_from (v + 1)
                (if eval_n g nodes (VMap.add x v env) body then found + 1
                 else found))
      in
      count_from 0 0

let flush_nodes nodes =
  if !nodes > 0 then begin
    Obs.Metric.add quantifier_nodes !nodes;
    nodes := 0
  end

let eval g nodes env f =
  match eval_n g nodes env f with
  | r -> flush_nodes nodes; r
  | exception e -> flush_nodes nodes; raise e

let holds g env f =
  Obs.Metric.incr eval_calls;
  (* A duplicate variable would silently resolve to the last binding
     (map semantics), the opposite of the assoc-list semantics callers
     expect — reject it instead of guessing. *)
  let env =
    List.fold_left
      (fun m (x, v) ->
        if VMap.mem x m then
          invalid_arg ("Eval.holds: duplicate binding for variable " ^ x)
        else VMap.add x v m)
      VMap.empty env
  in
  eval g (ref 0) env f

let sentence g f = holds g [] f

let holds_tuple g ~vars t f =
  if List.length vars <> Array.length t then
    invalid_arg "Eval.holds_tuple: variable/tuple length mismatch";
  holds g (List.mapi (fun i x -> (x, t.(i))) vars) f

(* Both enumerators stream the n^k assignments iteratively (same
   lexicographic order as [Graph.Tuple.all]) instead of materialising
   the tuple list up front: live memory is O(k + answers), not O(n^k),
   and a Guard checkpoint inside [eval] can stop the sweep early. *)

let answers g ~vars f =
  let n = Graph.order g in
  let vars_arr = Array.of_list vars in
  let k = Array.length vars_arr in
  let t = Array.make k 0 in
  let acc = ref [] in
  let calls = ref 0 in
  let nodes = ref 0 in
  let rec go i env =
    if i = k then begin
      incr calls;
      if eval_n g nodes env f then acc := Array.copy t :: !acc
    end
    else
      for v = 0 to n - 1 do
        t.(i) <- v;
        go (i + 1) (VMap.add vars_arr.(i) v env)
      done
  in
  let flush () =
    Obs.Metric.add eval_calls !calls;
    flush_nodes nodes
  in
  (match go 0 VMap.empty with
  | () -> flush ()
  | exception e -> flush (); raise e);
  List.rev !acc

let count_answers g ~vars f =
  let n = Graph.order g in
  let vars_arr = Array.of_list vars in
  let k = Array.length vars_arr in
  let count = ref 0 in
  let calls = ref 0 in
  let nodes = ref 0 in
  let rec go i env =
    if i = k then begin
      incr calls;
      if eval_n g nodes env f then incr count
    end
    else
      for v = 0 to n - 1 do
        go (i + 1) (VMap.add vars_arr.(i) v env)
      done
  in
  let flush () =
    Obs.Metric.add eval_calls !calls;
    flush_nodes nodes
  in
  (match go 0 VMap.empty with
  | () -> flush ()
  | exception e -> flush (); raise e);
  !count
