open Cgraph

type env = (Fo.Formula.var * Graph.vertex) list

exception Unbound_variable = Compile.Unbound_variable

module VMap = Map.Make (String)

(* "calls" counts top-level evaluations (one per tuple checked);
   "quantifier_nodes" counts quantifier visits inside the recursion.
   Boolean/atom nodes are deliberately NOT counted: they are a handful
   of machine instructions each, and even a branch-on-atomic there shows
   up in the disabled-overhead budget.

   Quantifier visits are batched in a plain local ref and flushed to
   the sharded sink once per entry point: on a dense formula the
   recursion visits a quantifier node every ~100 ns, and even the
   sharded record path (atomic load + DLS get + array store) is visible
   at that rate — E19's sink ratio is the gate.  Guard.tick stays
   per-node: fuel accounting is load-bearing for the focost envelopes
   and must not coarsen.  The flush is exception-safe because a tick
   can unwind to the enclosing Guard.run mid-recursion, and counter
   totals must come out identical either way.

   [eval_n] below is the reference walker: it remains the semantics
   oracle (the QCheck suite pins compiled ≡ reference) and the engine
   of the generic assoc-list [holds] entry point.  The per-tuple entry
   points — [holds_tuple], [sentence], [answers], [count_answers] —
   route through {!Compile}, which evaluates the same recursion over a
   flat int slot array with identical tick and counter behaviour. *)
let eval_calls = Obs.Metric.counter "modelcheck.eval.calls"
let quantifier_nodes = Obs.Metric.counter "modelcheck.eval.quantifier_nodes"

let lookup env x =
  match VMap.find_opt x env with
  | Some v -> v
  | None -> raise (Unbound_variable x)

let rec eval_n g nodes env (f : Fo.Formula.t) =
  match f with
  | True -> true
  | False -> false
  | Atom (Eq (x, y)) -> lookup env x = lookup env y
  | Atom (Edge (x, y)) -> Graph.mem_edge g (lookup env x) (lookup env y)
  | Atom (Color (c, x)) -> Graph.has_color g c (lookup env x)
  | Not f -> not (eval_n g nodes env f)
  | And fs -> List.for_all (eval_n g nodes env) fs
  | Or fs -> List.exists (eval_n g nodes env) fs
  | Implies (a, b) -> (not (eval_n g nodes env a)) || eval_n g nodes env b
  | Iff (a, b) -> eval_n g nodes env a = eval_n g nodes env b
  | Exists (x, body) ->
      incr nodes;
      Guard.tick Guard.Eval_step;
      let n = Graph.order g in
      let rec try_from v =
        v < n && (eval_n g nodes (VMap.add x v env) body || try_from (v + 1))
      in
      try_from 0
  | Forall (x, body) ->
      incr nodes;
      Guard.tick Guard.Eval_step;
      let n = Graph.order g in
      let rec all_from v =
        v >= n || (eval_n g nodes (VMap.add x v env) body && all_from (v + 1))
      in
      all_from 0
  | CountGe (t, x, body) ->
      incr nodes;
      Guard.tick Guard.Eval_step;
      let n = Graph.order g in
      let rec count_from v found =
        found >= t
        || (v < n
           && count_from (v + 1)
                (if eval_n g nodes (VMap.add x v env) body then found + 1
                 else found))
      in
      count_from 0 0

let flush_nodes nodes =
  if !nodes > 0 then begin
    Obs.Metric.add quantifier_nodes !nodes;
    nodes := 0
  end

let eval g nodes env f =
  match eval_n g nodes env f with
  | r -> flush_nodes nodes; r
  | exception e -> flush_nodes nodes; raise e

let holds g env f =
  Obs.Metric.incr eval_calls;
  (* A duplicate variable would silently resolve to the last binding
     (map semantics), the opposite of the assoc-list semantics callers
     expect — reject it instead of guessing. *)
  let env =
    List.fold_left
      (fun m (x, v) ->
        if VMap.mem x m then
          invalid_arg ("Eval.holds: duplicate binding for variable " ^ x)
        else VMap.add x v m)
      VMap.empty env
  in
  eval g (ref 0) env f

let sentence g f = Compile.holds_tuple (Compile.cached g ~vars:[] f) [||]

let holds_tuple g ~vars t f =
  if List.length vars <> Array.length t then
    invalid_arg "Eval.holds_tuple: variable/tuple length mismatch";
  Compile.holds_tuple (Compile.cached g ~vars f) t

(* Both enumerators stream the n^k assignments iteratively (same
   lexicographic order as [Graph.Tuple.all]) into the compiled code's
   slot array: live memory is O(slots + answers), not O(n^k), there is
   no environment-map churn, and a Guard checkpoint inside the compiled
   quantifier nodes can stop the sweep early. *)

let answers g ~vars f =
  let n = Graph.order g in
  let comp = Compile.compile_shadow g ~vars f in
  let k = List.length vars in
  let env = Array.make (max (Compile.slots comp) 1) 0 in
  let acc = ref [] in
  let calls = ref 0 in
  let nodes = ref 0 in
  let rec go i =
    if i = k then begin
      incr calls;
      if Compile.run comp env nodes then acc := Array.sub env 0 k :: !acc
    end
    else
      for v = 0 to n - 1 do
        env.(i) <- v;
        go (i + 1)
      done
  in
  let flush () =
    Obs.Metric.add eval_calls !calls;
    flush_nodes nodes
  in
  (match go 0 with
  | () -> flush ()
  | exception e -> flush (); raise e);
  List.rev !acc

let count_answers g ~vars f =
  let n = Graph.order g in
  let comp = Compile.compile_shadow g ~vars f in
  let k = List.length vars in
  let env = Array.make (max (Compile.slots comp) 1) 0 in
  let count = ref 0 in
  let calls = ref 0 in
  let nodes = ref 0 in
  let rec go i =
    if i = k then begin
      incr calls;
      if Compile.run comp env nodes then incr count
    end
    else
      for v = 0 to n - 1 do
        env.(i) <- v;
        go (i + 1)
      done
  in
  let flush () =
    Obs.Metric.add eval_calls !calls;
    flush_nodes nodes
  in
  (match go 0 with
  | () -> flush ()
  | exception e -> flush (); raise e);
  !count
