let variables k = List.init k (fun i -> Printf.sprintf "x%d" (i + 1))

let formulas_built = Obs.Metric.counter "modelcheck.hintikka.formulas_built"

let atomic_formula ~colors (sg : Types.atomsig) vars =
  let var = Array.of_list vars in
  let k = sg.Types.sig_arity in
  if Array.length var <> k then
    invalid_arg "Hintikka: variable/arity mismatch";
  let conjuncts = ref [] in
  let push f = conjuncts := f :: !conjuncts in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let e = Fo.Formula.eq var.(i) var.(j) in
      push (if List.mem (i, j) sg.Types.eqs then e else Fo.Formula.not_ e);
      let a = Fo.Formula.edge var.(i) var.(j) in
      push (if List.mem (i, j) sg.Types.edgs then a else Fo.Formula.not_ a)
    done
  done;
  for i = 0 to k - 1 do
    let held = sg.Types.cols.(i) in
    List.iter
      (fun c ->
        if not (List.mem c colors) then
          invalid_arg
            (Printf.sprintf "Hintikka.of_type: colour %S not in vocabulary" c))
      held;
    List.iter
      (fun c ->
        let a = Fo.Formula.color c var.(i) in
        push (if List.mem c held then a else Fo.Formula.not_ a))
      colors
  done;
  Fo.Formula.and_ (List.rev !conjuncts)

let of_type ~colors theta =
  Obs.Metric.incr formulas_built;
  let rec go theta vars =
    Guard.tick Guard.Hintikka_build;
    let sg, children = Types.node theta in
    let atomic = atomic_formula ~colors sg vars in
    match children with
    | None -> atomic
    | Some kids ->
        let y = Printf.sprintf "x%d" (List.length vars + 1) in
        let vars' = vars @ [ y ] in
        let realised =
          List.map (fun kid -> Fo.Formula.exists y (go kid vars')) kids
        in
        let exhausted =
          Fo.Formula.forall y (Fo.Formula.or_ (List.map (fun kid -> go kid vars') kids))
        in
        Fo.Formula.and_ ((atomic :: realised) @ [ exhausted ])
  in
  go theta (variables (Types.arity theta))

let of_types ~colors thetas =
  Fo.Formula.or_ (List.map (of_type ~colors) thetas)

let of_tuple ~colors g ~q u =
  of_type ~colors (Types.tp_graph g ~q u)
