(* Sharded hash-consing registry.

   The old design funnelled every [intern] — hit or miss — through one
   global mutex.  Under [Par] the ERM solvers intern the same handful
   of keys millions of times from every domain, so the lock became a
   convoy: domains queued behind each other to re-discover ids they had
   already seen.

   The sharded design keeps the global table as the single authority
   for id {e allocation} (ids must stay dense, stable and identical to
   the sequential run — they are embedded in hypothesis signature
   strings), but gives every domain a private read shard:

   - Hit path: a domain-local hashtable lookup.  No lock, no atomics.
   - Local miss, globally known: the shard catches up by replaying the
     published suffix of the global entry array — a {e lock-free merge}
     (two atomic loads and plain array reads of immutable-once-published
     slots), counted on [<prefix>.shard_merges].
   - Genuinely new key: the mutex path allocates the id, exactly as
     before.  Publication order is slot write, then [Atomic.set]
     on the entries array, then [Atomic.set] on the published
     watermark, so any reader that observes the watermark also
     observes the filled slots below it.

   Shards are [Domain.DLS] values validated against a global epoch so
   that {!reset} (below) invalidates them without coordination. *)

module Make (C : sig
  type key

  val dummy : key
  val prefix : string
end) =
struct
  type key = C.key
  type entry = { key : key; entry_rank : int }

  let shard_merges = Obs.Metric.counter (C.prefix ^ ".shard_merges")
  let table_bytes_g = Obs.Metric.gauge (C.prefix ^ ".table_bytes")

  let dummy_entry = { key = C.dummy; entry_rank = -1 }
  let table : (key, int) Hashtbl.t = Hashtbl.create 4096
  let table_mutex = Mutex.create ()
  let entries : entry array Atomic.t = Atomic.make (Array.make 1024 dummy_entry)
  let published = Atomic.make 0
  let next_id = ref 0
  let epoch = Atomic.make 0

  (* Rough live-heap estimate, updated under the mutex: per id one
     entry record + one table binding (key is shared between them).
     The constant is words-per-id incl. hashtable overhead; exactness
     does not matter — the gauge exists to show unbounded growth and to
     drop to ~0 after {!reset}. *)
  let approx_bytes n = n * 24 * (Sys.word_size / 8)

  type shard = {
    mutable shard_epoch : int;
    mutable watermark : int;
    tbl : (key, int) Hashtbl.t;
  }

  let shard_key =
    Domain.DLS.new_key (fun () ->
        { shard_epoch = -1; watermark = 0; tbl = Hashtbl.create 1024 })

  let my_shard () =
    let s = Domain.DLS.get shard_key in
    let e = Atomic.get epoch in
    if s.shard_epoch <> e then begin
      Hashtbl.reset s.tbl;
      s.watermark <- 0;
      s.shard_epoch <- e
    end;
    s

  (* Replay ids [s.watermark, hi) into the shard.  Lock-free: [hi] was
     read from [published], so the entry array published alongside it
     has those slots filled, and published slots are never mutated. *)
  let merge s hi =
    let arr = Atomic.get entries in
    for id = s.watermark to hi - 1 do
      Hashtbl.replace s.tbl arr.(id).key id
    done;
    s.watermark <- hi;
    Obs.Metric.incr shard_merges

  let intern_global s key entry_rank =
    Mutex.lock table_mutex;
    let id =
      match Hashtbl.find_opt table key with
      | Some id -> id
      | None ->
          let id = !next_id in
          incr next_id;
          let arr = Atomic.get entries in
          let arr =
            if id >= Array.length arr then begin
              let bigger = Array.make (2 * Array.length arr) dummy_entry in
              Array.blit arr 0 bigger 0 (Array.length arr);
              bigger
            end
            else arr
          in
          arr.(id) <- { key; entry_rank };
          Atomic.set entries arr;
          Atomic.set published (id + 1);
          Hashtbl.replace table key id;
          if Obs.Sink.enabled () then
            Obs.Metric.set table_bytes_g (float_of_int (approx_bytes !next_id));
          id
    in
    Mutex.unlock table_mutex;
    Hashtbl.replace s.tbl key id;
    id

  let intern key entry_rank =
    let s = my_shard () in
    match Hashtbl.find_opt s.tbl key with
    | Some id -> id
    | None ->
        let hi = Atomic.get published in
        if s.watermark < hi then begin
          merge s hi;
          match Hashtbl.find_opt s.tbl key with
          | Some id -> id
          | None -> intern_global s key entry_rank
        end
        else intern_global s key entry_rank

  let entry (id : int) =
    let arr = Atomic.get entries in
    if id < 0 || id >= Atomic.get published || arr.(id).entry_rank < 0 then
      invalid_arg (C.prefix ^ ": stale or unknown type id")
    else arr.(id)

  let rank id = (entry id).entry_rank
  let key id = (entry id).key

  type stats = { live : int; bytes : int }

  let stats () =
    Mutex.lock table_mutex;
    let live = !next_id in
    Mutex.unlock table_mutex;
    { live; bytes = approx_bytes live }

  let reset () =
    Mutex.lock table_mutex;
    Hashtbl.reset table;
    next_id := 0;
    Atomic.set entries (Array.make 1024 dummy_entry);
    Atomic.set published 0;
    Atomic.incr epoch;
    Obs.Metric.set table_bytes_g 0.0;
    Mutex.unlock table_mutex
end
