(** Sharded hash-consing registry (shared by {!Types} and {!Ctypes}).

    One global table remains the single authority for id allocation —
    ids are dense, stable, and identical to a sequential run — but each
    domain keeps a private read shard ([Domain.DLS]), so the hot path
    (re-interning an already-known key) is a lock-free local hashtable
    hit.  A shard that falls behind catches up by replaying the
    published suffix of the global entry array: a lock-free merge,
    counted on [<prefix>.shard_merges].  Only genuinely new keys take
    the global mutex.

    The registry grows monotonically while in use; {!reset} reclaims it
    at a quiescent point (e.g. between fleet chunks).  The approximate
    footprint is exported on the [<prefix>.table_bytes] gauge. *)

module Make (C : sig
  type key

  val dummy : key
  (** Filler for unallocated entry slots; never returned. *)

  val prefix : string
  (** Metric name prefix, e.g. ["modelcheck.types.intern"]. *)
end) : sig
  type key = C.key

  val intern : key -> int -> int
  (** [intern key rank] returns the canonical id for [key], allocating
      the next dense id on first sight.  Safe to call from any domain;
      lock-free when the key is already in the calling domain's shard. *)

  val rank : int -> int
  val key : int -> key
  (** Entry accessors; lock-free.
      @raise Invalid_argument on an id that is stale (from before a
      {!reset}) or was never allocated. *)

  type stats = { live : int  (** interned entries *); bytes : int }

  val stats : unit -> stats
  (** Current registry size; [bytes] is the same estimate the
      [<prefix>.table_bytes] gauge carries. *)

  val reset : unit -> unit
  (** Empty the registry and invalidate every domain's shard (via a
      global epoch — no cross-domain coordination needed).  All
      previously returned ids become stale.  The caller must guarantee
      quiescence: no concurrent [intern] calls and no live ids held
      across the reset.  Fleet calls this between chunks, whose results
      carry no type ids. *)
end
