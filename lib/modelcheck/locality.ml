open Cgraph

type violation = {
  left : Graph.Tuple.t;
  right : Graph.Tuple.t;
  local_type : Types.ty;
}

let violations g ~q ~r ~k =
  Obs.Span.with_ "locality.violations"
    ~args:
      [ ("q", string_of_int q); ("r", string_of_int r); ("k", string_of_int k) ]
  @@ fun () ->
  let ctx = Types.make_ctx g in
  let tuples = Graph.Tuple.all ~n:(Graph.order g) ~k in
  let local_classes = Types.partition_by_ltp ctx ~q ~r tuples in
  List.concat_map
    (fun (lt, members) ->
      (* within one local class, global types must coincide; report one
         witness pair per extra global class *)
      match Types.partition_by_tp ctx ~q members with
      | [] | [ _ ] -> []
      | (_, first :: _) :: rest ->
          List.filter_map
            (fun (_, members') ->
              match members' with
              | other :: _ -> Some { left = first; right = other; local_type = lt }
              | [] -> None)
            rest
      | ( _, [] ) :: _ -> [])
    local_classes

let fact5_holds g ~q ~r ~k = violations g ~q ~r ~k = []

let minimal_radius g ~q ~k ~max_r =
  let rec go r =
    if r > max_r then None
    else if fact5_holds g ~q ~r ~k then Some r
    else go (r + 1)
  in
  go 0
