open Cgraph

type ty = int

let equal (a : ty) (b : ty) = a = b
let compare (a : ty) (b : ty) = Int.compare a b
let hash (a : ty) = a
let pp ppf (a : ty) = Format.fprintf ppf "#%d" a

type atomsig = {
  sig_arity : int;
  eqs : (int * int) list;
  edgs : (int * int) list;
  cols : string list array;
}

(* ------------------------------------------------------------------ *)
(* Hash-consing registry (sharded; see Intern)                         *)
(* ------------------------------------------------------------------ *)

(* children sorted & deduplicated; None = rank 0 *)
module Reg = Intern.Make (struct
  type key = atomsig * ty list option

  let dummy = ({ sig_arity = 0; eqs = []; edgs = []; cols = [||] }, None)
  let prefix = "modelcheck.types"
end)

let intern = Reg.intern
let rank = Reg.rank

let arity (t : ty) =
  let sg, _ = Reg.key t in
  sg.sig_arity

let node (t : ty) = Reg.key t

type table_stats = Reg.stats = { live : int; bytes : int }

let table_stats = Reg.stats
let reset_tables = Reg.reset

(* ------------------------------------------------------------------ *)
(* Atomic signatures                                                   *)
(* ------------------------------------------------------------------ *)

let atomic_signature g (u : Graph.Tuple.t) =
  let k = Array.length u in
  let eqs = ref [] and edgs = ref [] in
  for j = k - 1 downto 0 do
    for i = j - 1 downto 0 do
      if u.(i) = u.(j) then eqs := (i, j) :: !eqs;
      if Graph.mem_edge g u.(i) u.(j) then edgs := (i, j) :: !edgs
    done
  done;
  {
    sig_arity = k;
    eqs = !eqs;
    edgs = !edgs;
    cols = Array.map (Graph.colors_of g) u;
  }

(* ------------------------------------------------------------------ *)
(* Contexts and type computation                                       *)
(* ------------------------------------------------------------------ *)

let tp_hits = Obs.Metric.counter "modelcheck.types.tp_hits"
let tp_misses = Obs.Metric.counter "modelcheck.types.tp_misses"
let ltp_hits = Obs.Metric.counter "modelcheck.types.ltp_hits"
let ltp_misses = Obs.Metric.counter "modelcheck.types.ltp_misses"
let ltp_radius_h = Obs.Metric.histogram "modelcheck.types.ltp_radius"

type ctx = {
  g : Graph.t;
  tp_memo : (int * Graph.Tuple.t, ty) Hashtbl.t;
  ltp_memo : (int * int * Graph.Tuple.t, ty) Hashtbl.t;
}

let make_ctx g = { g; tp_memo = Hashtbl.create 256; ltp_memo = Hashtbl.create 256 }

let graph ctx = ctx.g

let rec tp ctx ~q u =
  if q < 0 then invalid_arg "Types.tp: negative quantifier rank";
  match Hashtbl.find_opt ctx.tp_memo (q, u) with
  | Some t ->
      Obs.Metric.incr tp_hits;
      t
  | None ->
      Obs.Metric.incr tp_misses;
      (* Every memo miss is a fresh table row: the natural unit for
         the guard's Hintikka-table budget. *)
      Guard.note_table_row (Hashtbl.length ctx.tp_memo + 1);
      let sg = atomic_signature ctx.g u in
      let t =
        if q = 0 then intern (sg, None) 0
        else begin
          let n = Graph.order ctx.g in
          let children = ref [] in
          for w = 0 to n - 1 do
            let child = tp ctx ~q:(q - 1) (Graph.Tuple.append u [| w |]) in
            children := child :: !children
          done;
          let children = List.sort_uniq Int.compare !children in
          intern (sg, Some children) q
        end
      in
      Hashtbl.replace ctx.tp_memo (q, u) t;
      t

let tp_graph g ~q u = tp (make_ctx g) ~q u

let ltp ctx ~q ~r u =
  if r < 0 then invalid_arg "Types.ltp: negative radius";
  if Obs.Sink.enabled () then Obs.Metric.observe ltp_radius_h (float_of_int r);
  match Hashtbl.find_opt ctx.ltp_memo (q, r, u) with
  | Some t ->
      Obs.Metric.incr ltp_hits;
      t
  | None ->
      Obs.Metric.incr ltp_misses;
      Guard.tick Guard.Hintikka_build;
      let emb = Ops.neighborhood ctx.g ~r u in
      let u' =
        Array.map
          (fun v ->
            match emb.Ops.to_sub v with
            | Some v' -> v'
            | None -> assert false (* members of ū are in their own ball *))
          u
      in
      let t = tp (make_ctx emb.Ops.graph) ~q u' in
      Hashtbl.replace ctx.ltp_memo (q, r, u) t;
      t

let partition_by keyf tuples =
  let tbl : (ty, Graph.Tuple.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun u ->
      let t = keyf u in
      match Hashtbl.find_opt tbl t with
      | Some cell -> cell := u :: !cell
      | None ->
          Hashtbl.replace tbl t (ref [ u ]);
          order := t :: !order)
    tuples;
  List.rev_map
    (fun t -> (t, List.rev !(Hashtbl.find tbl t)))
    !order

let partition_by_tp ctx ~q tuples = partition_by (fun u -> tp ctx ~q u) tuples

let partition_by_ltp ctx ~q ~r tuples =
  partition_by (fun u -> ltp ctx ~q ~r u) tuples

let count_types g ~q ~k =
  let ctx = make_ctx g in
  partition_by_tp ctx ~q (Graph.Tuple.all ~n:(Graph.order g) ~k) |> List.length
