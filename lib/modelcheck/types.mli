(** Canonical first-order types [tp_q(G, ū)] and local types
    [ltp_{q,r}(G, ū)] (paper, Section 2).

    A [q]-type is represented canonically and hash-consed: the type of a
    tuple is its atomic signature together with the {e set} of
    [(q-1)]-types of its one-point extensions,

    {v tp_q(G, ū)  ~  (atp(G, ū), { tp_{q-1}(G, ūw) | w ∈ V(G) }) v}

    Two tuples (possibly in different graphs over comparable vocabularies)
    get the same id iff they are [q]-equivalent — cross-checked against the
    independent EF-game implementation in the tests.  Canonical ids make
    types usable as hash keys, which is what the ERM algorithms need, and
    make them comparable across the projected graphs of Lemma 16.

    Vocabulary convention: the atomic signature records the {e positive}
    colour facts only, so two graphs are compared as structures over the
    union of their colour vocabularies. *)

open Cgraph

type ty = private int
(** Canonical type id.  Equal ids = equal types (within one process). *)

val equal : ty -> ty -> bool
val compare : ty -> ty -> int
val hash : ty -> int
val pp : Format.formatter -> ty -> unit

val rank : ty -> int
(** The quantifier rank [q] this type was computed at. *)

val arity : ty -> int
(** Number of free variables [k] of the type. *)

(** {1 Computing types}

    A context memoises type computations for one graph; reuse it across
    calls for the same graph. *)

type ctx

val make_ctx : Graph.t -> ctx

val graph : ctx -> Graph.t

val tp : ctx -> q:int -> Graph.Tuple.t -> ty
(** [tp ctx ~q ū = tp_q(G, ū)].  Cost: [O(n^q)] extensions (memoised);
    keep [q] small. *)

val ltp : ctx -> q:int -> r:int -> Graph.Tuple.t -> ty
(** [ltp ctx ~q ~r ū = tp_q(N_r^G(ū), ū)]: the local [(q,r)]-type,
    computed in the induced neighbourhood graph.  Memoised. *)

val tp_graph : Graph.t -> q:int -> Graph.Tuple.t -> ty
(** One-shot [tp] without an explicit context. *)

val partition_by_tp : ctx -> q:int -> Graph.Tuple.t list -> (ty * Graph.Tuple.t list) list
(** Group tuples by their [q]-type; classes ordered by first occurrence. *)

val partition_by_ltp :
  ctx -> q:int -> r:int -> Graph.Tuple.t list -> (ty * Graph.Tuple.t list) list
(** Group tuples by their local [(q,r)]-type. *)

val count_types : Graph.t -> q:int -> k:int -> int
(** Number of distinct [q]-types of [k]-tuples realised in the graph
    (experiment E8 statistic). *)

(** {1 Structure access (for Hintikka formulas)} *)

type atomsig = {
  sig_arity : int;
  eqs : (int * int) list;  (** positions [i < j] with [u_i = u_j] *)
  edgs : (int * int) list;  (** positions [i < j] with an edge *)
  cols : string list array;  (** per position: sorted colours holding *)
}
(** Atomic signature of a tuple: the quantifier-free type. *)

val atomic_signature : Graph.t -> Graph.Tuple.t -> atomsig

val node : ty -> atomsig * ty list option
(** Decompose a canonical type: its atomic signature, and [None] for rank 0
    or [Some children] (sorted, distinct [(q-1)]-types of the one-point
    extensions) for rank [>= 1]. *)

(** {1 Registry lifecycle}

    The hash-consing registry grows monotonically while in use (every
    distinct type ever interned stays live).  Long-running processes —
    the fleet worker in particular — reclaim it between work chunks. *)

type table_stats = { live : int  (** interned types *); bytes : int }

val table_stats : unit -> table_stats
(** Registry size; [bytes] is the estimate exported on the
    [modelcheck.types.table_bytes] gauge. *)

val reset_tables : unit -> unit
(** Empty the registry and invalidate all per-domain shards.  Every
    previously returned [ty] becomes stale (accessors raise).  Only
    call at a quiescent point with no live [ty] values — e.g. between
    fleet chunks, whose results carry only error counts. *)
