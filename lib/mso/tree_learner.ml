type entry = {
  name : string;
  phi : Tree_formula.t;
  xvars : Tree_formula.var list;
  yvars : Tree_formula.var list;
}

type result = {
  entry : entry;
  params : int array;
  err : float;
  evaluations : int;
}

let scope_of entry =
  List.map (fun v -> (v, Tree_formula.Pos)) (entry.xvars @ entry.yvars)

let check_entry entry =
  let scope = scope_of entry in
  List.iter
    (fun (v, kind) ->
      match (List.assoc_opt v scope, kind) with
      | Some Tree_formula.Pos, Tree_formula.Pos -> ()
      | _ ->
          invalid_arg
            (Printf.sprintf
               "Tree_learner: free variable %S of %S must be an x/y position \
                variable"
               v entry.name))
    (Tree_formula.free entry.phi)

let assignment_of entry example params =
  {
    Tree_formula.pos =
      List.map2
        (fun v p -> (v, p))
        (entry.xvars @ entry.yvars)
        (Array.to_list example @ Array.to_list params);
    sets = [];
  }

let rec param_tuples n = function
  | 0 -> [ [||] ]
  | j ->
      List.concat_map
        (fun rest -> List.init n (fun p -> Array.append [| p |] rest))
        (param_tuples n (j - 1))

let solve ~sigma ~tree ~catalogue examples =
  let n = Tree.size tree in
  let m = List.length examples in
  let evals = ref 0 in
  let best = ref None in
  List.iter
    (fun entry ->
      check_entry entry;
      let kx = List.length entry.xvars in
      List.iter
        (fun (v, _) ->
          if Array.length v <> kx then
            invalid_arg "Tree_learner.solve: example arity mismatch")
        examples;
      let scope = scope_of entry in
      let ta = Tree_formula.compile ~sigma ~scope entry.phi in
      List.iter
        (fun params ->
          let errs =
            List.fold_left
              (fun acc (v, label) ->
                incr evals;
                let verdict =
                  Tree_formula.holds_compiled ~sigma ~scope ta tree
                    (assignment_of entry v params)
                in
                if verdict <> label then acc + 1 else acc)
              0 examples
          in
          match !best with
          | Some (_, _, e) when e <= errs -> ()
          | _ -> best := Some (entry, params, errs))
        (param_tuples n (List.length entry.yvars)))
    catalogue;
  match !best with
  | None -> None
  | Some (entry, params, errs) ->
      Some
        {
          entry;
          params;
          err = (if m = 0 then 0.0 else float_of_int errs /. float_of_int m);
          evaluations = !evals;
        }

let predict ~sigma ~tree result v =
  let scope = scope_of result.entry in
  let ta = Tree_formula.compile ~sigma ~scope result.entry.phi in
  Tree_formula.holds_compiled ~sigma ~scope ta tree
    (assignment_of result.entry v result.params)

(* ------------------------------------------------------------------ *)
(* Per-node preprocessing for unary concepts ([19])                    *)
(* ------------------------------------------------------------------ *)

module Node_oracle = struct
  module Ta = Tree_automaton

  type t = {
    ta : Ta.t;
    verdict : bool array;  (** per preorder node id *)
  }

  let make ~sigma phi tree =
    (match Tree_formula.free phi with
    | [ (_, Tree_formula.Pos) ] -> ()
    | _ ->
        invalid_arg
          "Node_oracle.make: the formula must have exactly one free position \
           variable");
    let x =
      match Tree_formula.free phi with [ (v, _) ] -> v | _ -> assert false
    in
    let ta = Tree_formula.compile ~sigma ~scope:[ (x, Tree_formula.Pos) ] phi in
    let states = ta.Ta.states in
    let n = Tree.size tree in
    (* pass 1 (bottom-up): zero-annotated state below every node *)
    let below = Array.make n 0 in
    let counter = ref (-1) in
    let rec pass1 t =
      incr counter;
      let id = !counter in
      let q =
        match t with
        | Tree.Leaf a -> ta.Ta.leaf.(a)
        | Tree.Unary (a, c) ->
            let qc = pass1 c in
            ta.Ta.unary.(qc).(a)
        | Tree.Binary (a, l, r) ->
            let ql = pass1 l in
            let qr = pass1 r in
            ta.Ta.binary.(ql).(qr).(a)
      in
      below.(id) <- q;
      q
    in
    ignore (pass1 tree);
    (* pass 2 (top-down): context behaviour above every node, then the
       verdict with the node itself marked (mask bit 0 => label + sigma) *)
    let verdict = Array.make n false in
    let counter = ref (-1) in
    let rec pass2 t (above : bool array) =
      incr counter;
      let id = !counter in
      let marked a = a + sigma in
      (match t with
      | Tree.Leaf a -> verdict.(id) <- above.(ta.Ta.leaf.(marked a))
      | Tree.Unary (a, c) ->
          let qc = below.(id + 1) in
          verdict.(id) <- above.(ta.Ta.unary.(qc).(marked a));
          let above_c =
            Array.init states (fun q -> above.(ta.Ta.unary.(q).(a)))
          in
          pass2 c above_c
      | Tree.Binary (a, l, r) ->
          let idl = id + 1 in
          let idr = id + 1 + Tree.size l in
          let ql = below.(idl) and qr = below.(idr) in
          verdict.(id) <- above.(ta.Ta.binary.(ql).(qr).(marked a));
          let above_l =
            Array.init states (fun q -> above.(ta.Ta.binary.(q).(qr).(a)))
          in
          pass2 l above_l;
          let above_r =
            Array.init states (fun q -> above.(ta.Ta.binary.(ql).(q).(a)))
          in
          pass2 r above_r)
    in
    pass2 tree (Array.copy ta.Ta.accept);
    { ta; verdict }

  let holds o v =
    if v < 0 || v >= Array.length o.verdict then
      invalid_arg "Node_oracle.holds: node id out of range";
    o.verdict.(v)

  let states o = o.ta.Ta.states
end
