(* Process-local origin: subtracting it before converting to ns keeps
   the magnitude small enough that float precision is not the limiting
   factor (the wall clock itself only resolves ~1us). *)
let origin = Unix.gettimeofday ()

let last = Atomic.make 0L

let now_ns () =
  let raw = Int64.of_float ((Unix.gettimeofday () -. origin) *. 1e9) in
  (* Clamp non-decreasing: if the wall clock stepped backwards, freeze
     at the highest value seen so far instead of going back in time. *)
  let rec fix () =
    let prev = Atomic.get last in
    if Int64.compare raw prev <= 0 then prev
    else if Atomic.compare_and_set last prev raw then raw
    else fix ()
  in
  fix ()

let elapsed_s t0 = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9
let cpu_ns () = Int64.of_float (Sys.time () *. 1e9)
