(** Monotonic time for instrumentation.

    The stock runtime exposes only the wall clock
    ({!Unix.gettimeofday}), which can step backwards under NTP
    adjustment — exactly the jitter benchmark numbers must not inherit.
    [now_ns] clamps the wall clock to be non-decreasing process-wide, so
    every span duration and benchmark delta is [>= 0] and ordering is
    consistent across threads.  Effective resolution is that of the
    underlying clock (about a microsecond); the nanosecond unit is for
    uniformity with trace formats. *)

val now_ns : unit -> int64
(** Nanoseconds since an arbitrary process-local origin.  Non-decreasing
    across all domains. *)

val elapsed_s : int64 -> float
(** [elapsed_s t0] is the time in seconds since the instant [t0] (a
    previous [now_ns] result). *)

val cpu_ns : unit -> int64
(** Processor time consumed by the process ({!Sys.time}), in
    nanoseconds.  Monotonic by construction; useful to separate compute
    from waiting. *)
