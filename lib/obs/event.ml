(* The flight-recorder ring.  Unlike metrics and spans this is *not*
   gated on the sink: the events recorded here (budget trips, snapshot
   writes, task retries, span boundaries) are rare, and the whole point
   of a flight recorder is to still have the tail of the story when a
   run dies with telemetry off.  A single mutex suffices — producers
   are cold paths by construction. *)

type t = {
  seq : int;
  t_ns : int64;
  kind : string;
  name : string;
  args : (string * string) list;
  domain : int;
}

let default_capacity = 1024
let mutex = Mutex.create ()
let capacity = ref default_capacity
let ring : t option array ref = ref (Array.make default_capacity None)
let recorded = ref 0

(* Fired after every record, outside the ring lock; the pulse layer
   attaches its cadence flush here.  One slot, like [Guard]'s tick
   hook: the only subscriber today is the flight-recorder file
   writer. *)
let hook : (unit -> unit) option Atomic.t = Atomic.make None
let set_hook h = Atomic.set hook h

let set_capacity n =
  if n < 1 then invalid_arg "Obs.Event.set_capacity: capacity must be >= 1";
  Mutex.lock mutex;
  capacity := n;
  ring := Array.make n None;
  recorded := 0;
  Mutex.unlock mutex

let record ~kind ?(args = []) name =
  let t_ns = Clock.now_ns () in
  Mutex.lock mutex;
  let seq = !recorded in
  !ring.(seq mod !capacity) <-
    Some { seq; t_ns; kind; name; args; domain = (Domain.self () :> int) };
  recorded := seq + 1;
  Mutex.unlock mutex;
  match Atomic.get hook with None -> () | Some h -> h ()

let total () =
  Mutex.lock mutex;
  let n = !recorded in
  Mutex.unlock mutex;
  n

let dump () =
  Mutex.lock mutex;
  let cap = !capacity in
  let n = !recorded in
  let kept = min n cap in
  let out = ref [] in
  (* newest-first walk back over the ring, then the list is oldest-first *)
  for i = 0 to kept - 1 do
    match !ring.((n - 1 - i) mod cap) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  Mutex.unlock mutex;
  !out

let dropped () =
  Mutex.lock mutex;
  let d = max 0 (!recorded - !capacity) in
  Mutex.unlock mutex;
  d

let reset () =
  Mutex.lock mutex;
  Array.fill !ring 0 !capacity None;
  recorded := 0;
  Mutex.unlock mutex

(* ------------------------------------------------------------------ *)
(* JSON codec (used by the FOLEARNFDR1 dump format in folearn.pulse)   *)
(* ------------------------------------------------------------------ *)

let to_json e =
  Json.Obj
    [
      ("seq", Json.Int e.seq);
      ("t_ns", Json.Int (Int64.to_int e.t_ns));
      ("kind", Json.String e.kind);
      ("name", Json.String e.name);
      ("domain", Json.Int e.domain);
      ( "args",
        Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) e.args) );
    ]

let of_json j =
  let int_field name =
    match Option.bind (Json.member name j) Json.to_int_opt with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "event: missing or non-int field %S" name)
  in
  let str_field name =
    match Option.bind (Json.member name j) Json.to_string_opt with
    | Some v -> Ok v
    | None ->
        Error (Printf.sprintf "event: missing or non-string field %S" name)
  in
  let ( let* ) = Result.bind in
  let* seq = int_field "seq" in
  let* t_ns = int_field "t_ns" in
  let* kind = str_field "kind" in
  let* name = str_field "name" in
  let* domain = int_field "domain" in
  let* args =
    match Json.member "args" j with
    | Some (Json.Obj kvs) ->
        let rec conv acc = function
          | [] -> Ok (List.rev acc)
          | (k, Json.String v) :: rest -> conv ((k, v) :: acc) rest
          | (k, _) :: _ ->
              Error (Printf.sprintf "event: non-string arg %S" k)
        in
        conv [] kvs
    | _ -> Error "event: missing or malformed \"args\" object"
  in
  Ok { seq; t_ns = Int64.of_int t_ns; kind; name; args; domain }

let pp ppf e =
  Format.fprintf ppf "#%-6d %14Ld  d%d  %-8s %s%s" e.seq e.t_ns e.domain
    e.kind e.name
    (match e.args with
    | [] -> ""
    | args ->
        "  ["
        ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) args)
        ^ "]")
