(** The flight-recorder event ring: a bounded, always-on buffer of the
    last N structured events (budget trips, snapshot writes, task
    retries, span boundaries).

    Unlike {!Metric} and {!Span}, recording here is {e not} gated on
    {!Sink.enabled}: producers are rare control-flow edges, and the
    recorder must still hold the tail of the story when a run dies
    with telemetry off.  The ring overwrites oldest-first once full;
    {!dump} returns what survives, {!dropped} says how much history
    was lost.

    [folearn.pulse] persists dumps in the [FOLEARNFDR1] file format
    and installs the {!set_hook} cadence writer; this module is just
    the in-memory substrate so that [lib/guard]/[lib/par]/[lib/resil]
    can record events without depending on the pulse layer. *)

type t = {
  seq : int;  (** monotone sequence number, dense from 0 *)
  t_ns : int64;  (** {!Clock.now_ns} at record time *)
  kind : string;  (** producer subsystem: "guard", "par", "resil", "span" *)
  name : string;  (** event name, e.g. "guard.trip" *)
  args : (string * string) list;  (** structured payload *)
  domain : int;  (** recording domain id *)
}

val default_capacity : int
(** 1024 events. *)

val record : kind:string -> ?args:(string * string) list -> string -> unit
(** Append one event (thread-safe; overwrites the oldest entry when
    the ring is full), then fire the hook outside the lock. *)

val set_capacity : int -> unit
(** Resize the ring; clears it.  Raises [Invalid_argument] below 1. *)

val set_hook : (unit -> unit) option -> unit
(** A single post-record hook slot — the pulse flight-recorder file
    writer attaches its flush cadence here. *)

val total : unit -> int
(** Events recorded since start/{!reset}, including overwritten ones. *)

val dropped : unit -> int
(** Events lost to ring wrap-around: [max 0 (total - capacity)]. *)

val dump : unit -> t list
(** Surviving events, oldest first; sequence numbers are contiguous. *)

val reset : unit -> unit

(** {1 JSON codec} — used by the [FOLEARNFDR1] dump format. *)

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result
(** [of_json (to_json e) = Ok e]. *)

val pp : Format.formatter -> t -> unit
(** One-line human rendering for [folearn_cli pulse]. *)
