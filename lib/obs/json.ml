type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    (* shortest representation that still round-trips *)
    let s = Printf.sprintf "%.17g" f in
    let shorter = Printf.sprintf "%.12g" f in
    if float_of_string shorter = f then shorter else s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let rec pp ppf = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v ->
      Format.pp_print_string ppf (to_string v)
  | List [] -> Format.pp_print_string ppf "[]"
  | List vs ->
      Format.fprintf ppf "@[<v 2>[";
      List.iteri
        (fun i v ->
          if i > 0 then Format.fprintf ppf ",";
          Format.fprintf ppf "@,%a" pp v)
        vs;
      Format.fprintf ppf "@]@,]"
  | Obj [] -> Format.pp_print_string ppf "{}"
  | Obj kvs ->
      Format.fprintf ppf "@[<v 2>{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Format.fprintf ppf ",";
          Format.fprintf ppf "@,\"%s\": %a" (escape k) pp v)
        kvs;
      Format.fprintf ppf "@]@,}"

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

exception Parse_fail of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                  if !pos + 4 > n then fail "truncated \\u escape";
                  let hex = String.sub s !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> fail "bad \\u escape"
                  in
                  (* ASCII only is enough for our own encoder output;
                     other code points are replaced *)
                  if code < 0x80 then Buffer.add_char buf (Char.chr code)
                  else Buffer.add_char buf '?'
              | _ -> fail "unknown escape");
              go ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while match peek () with Some c when is_num_char c -> true | _ -> false do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    if lit = "" then fail "expected a number";
    let has_frac =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) lit
    in
    if has_frac then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elems () =
            items := parse_value () :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elems ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let items = ref [] in
          let rec membs () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            items := (k, v) :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                membs ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          membs ();
          Obj (List.rev !items)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_fail (at, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int_opt = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List vs -> Some vs | _ -> None
