(** A minimal JSON value type with a printer and a parser.

    The observability layer is zero-external-dependency by design, so it
    carries its own JSON support: enough for metrics snapshots, Chrome
    trace-event files, and the machine-readable benchmark telemetry
    ([BENCH_*.json]).  Encoding and decoding round-trip: for every value
    [v] built from finite floats, [of_string (to_string v) = Ok v]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** encoded with 17 significant digits (round-trips) *)
  | String of string
  | List of t list
  | Obj of (string * t) list  (** insertion order is preserved *)

val to_string : t -> string
(** Compact, single-line encoding.  Non-finite floats encode as [null]
    (JSON has no representation for them). *)

val pp : Format.formatter -> t -> unit
(** Human-oriented encoding: two-space indentation, one member per
    line.  Still valid JSON. *)

val of_string : string -> (t, string) result
(** Parse a JSON document.  Numbers without ['.'], ['e'] or ['E'] that
    fit in an OCaml [int] decode as [Int], everything else as [Float].
    The error string carries a character offset. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]; [None] otherwise. *)

val to_int_opt : t -> int option
(** [Int n] gives [Some n]; an integral [Float] is truncated. *)

val to_float_opt : t -> float option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
