type counter = { c_value : int Atomic.t }
type gauge = { g_value : float Atomic.t }

let nbuckets = 256

type histogram = {
  h_mutex : Mutex.t;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let counter name =
  with_lock registry_mutex (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { c_value = Atomic.make 0 } in
          Hashtbl.replace counters name c;
          c)

let gauge name =
  with_lock registry_mutex (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g
      | None ->
          let g = { g_value = Atomic.make 0.0 } in
          Hashtbl.replace gauges name g;
          g)

let histogram name =
  with_lock registry_mutex (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
          let h =
            {
              h_mutex = Mutex.create ();
              h_buckets = Array.make nbuckets 0;
              h_count = 0;
              h_sum = 0.0;
              h_min = infinity;
              h_max = neg_infinity;
            }
          in
          Hashtbl.replace histograms name h;
          h)

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let incr c = if Sink.enabled () then Atomic.incr c.c_value

let add c n =
  if Sink.enabled () then ignore (Atomic.fetch_and_add c.c_value n)

let set g v = if Sink.enabled () then Atomic.set g.g_value v

(* bucket [i >= 1] covers [2^((i-1)/4), 2^(i/4)); bucket 0 is (-inf, 1) *)
let bucket_index v =
  if not (v >= 1.0) then 0
  else min (nbuckets - 1) (1 + int_of_float (4.0 *. Float.log2 v))

let bucket_representative hs_min hs_max i =
  let raw =
    if i = 0 then hs_min
    else Float.exp2 ((float_of_int i -. 0.5) /. 4.0)
  in
  Float.min hs_max (Float.max hs_min raw)

let observe h v =
  if Sink.enabled () then
    with_lock h.h_mutex (fun () ->
        h.h_buckets.(bucket_index v) <- h.h_buckets.(bucket_index v) + 1;
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v)

let value c = Atomic.get c.c_value
let gauge_value g = Atomic.get g.g_value

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : (int * int) list;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

let hist_snapshot h =
  with_lock h.h_mutex (fun () ->
      let buckets = ref [] in
      for i = nbuckets - 1 downto 0 do
        if h.h_buckets.(i) > 0 then buckets := (i, h.h_buckets.(i)) :: !buckets
      done;
      {
        hs_count = h.h_count;
        hs_sum = h.h_sum;
        hs_min = (if h.h_count = 0 then 0.0 else h.h_min);
        hs_max = (if h.h_count = 0 then 0.0 else h.h_max);
        hs_buckets = !buckets;
      })

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  with_lock registry_mutex (fun () ->
      {
        counters =
          Hashtbl.fold (fun n c acc -> (n, value c) :: acc) counters []
          |> List.sort by_name;
        gauges =
          Hashtbl.fold (fun n g acc -> (n, gauge_value g) :: acc) gauges []
          |> List.sort by_name;
        histograms =
          Hashtbl.fold (fun n h acc -> (n, hist_snapshot h) :: acc) histograms []
          |> List.sort by_name;
      })

let reset () =
  with_lock registry_mutex (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.g_value 0.0) gauges;
      Hashtbl.iter
        (fun _ h ->
          with_lock h.h_mutex (fun () ->
              Array.fill h.h_buckets 0 nbuckets 0;
              h.h_count <- 0;
              h.h_sum <- 0.0;
              h.h_min <- infinity;
              h.h_max <- neg_infinity))
        histograms)

let quantile hs p =
  if hs.hs_count = 0 then 0.0
  else begin
    let p = Float.min 1.0 (Float.max 0.0 p) in
    let target = max 1 (int_of_float (Float.ceil (p *. float_of_int hs.hs_count))) in
    let rec walk cum = function
      | [] -> hs.hs_max
      | (i, c) :: rest ->
          if cum + c >= target then bucket_representative hs.hs_min hs.hs_max i
          else walk (cum + c) rest
    in
    walk 0 hs.hs_buckets
  end

let find_counter snap name =
  match List.assoc_opt name snap.counters with Some v -> v | None -> 0

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let hist_to_json hs =
  Json.Obj
    [
      ("count", Json.Int hs.hs_count);
      ("sum", Json.Float hs.hs_sum);
      ("min", Json.Float hs.hs_min);
      ("max", Json.Float hs.hs_max);
      ("p50", Json.Float (quantile hs 0.5));
      ("p90", Json.Float (quantile hs 0.9));
      ("p99", Json.Float (quantile hs 0.99));
      ( "buckets",
        Json.List
          (List.map
             (fun (i, c) -> Json.List [ Json.Int i; Json.Int c ])
             hs.hs_buckets) );
    ]

let snapshot_to_json snap =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) snap.counters) );
      ( "gauges",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) snap.gauges) );
      ( "histograms",
        Json.Obj
          (List.map (fun (n, hs) -> (n, hist_to_json hs)) snap.histograms) );
    ]

let hist_of_json j =
  let ( let* ) = Result.bind in
  let field name conv =
    match Json.member name j with
    | Some v -> (
        match conv v with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "histogram member %S has wrong type" name))
    | None -> Error (Printf.sprintf "histogram member %S missing" name)
  in
  let* count = field "count" Json.to_int_opt in
  let* sum = field "sum" Json.to_float_opt in
  let* minv = field "min" Json.to_float_opt in
  let* maxv = field "max" Json.to_float_opt in
  let* bucket_list = field "buckets" Json.to_list_opt in
  let* buckets =
    List.fold_left
      (fun acc b ->
        let* acc = acc in
        match b with
        | Json.List [ i; c ] -> (
            match (Json.to_int_opt i, Json.to_int_opt c) with
            | Some i, Some c -> Ok ((i, c) :: acc)
            | _ -> Error "bucket entries must be integer pairs")
        | _ -> Error "bucket entries must be pairs")
      (Ok []) bucket_list
  in
  Ok
    {
      hs_count = count;
      hs_sum = sum;
      hs_min = minv;
      hs_max = maxv;
      hs_buckets = List.rev buckets;
    }

let snapshot_of_json j =
  let ( let* ) = Result.bind in
  let section name =
    match Json.member name j with
    | Some (Json.Obj kvs) -> Ok kvs
    | Some _ -> Error (Printf.sprintf "section %S must be an object" name)
    | None -> Error (Printf.sprintf "section %S missing" name)
  in
  let* counter_kvs = section "counters" in
  let* gauge_kvs = section "gauges" in
  let* hist_kvs = section "histograms" in
  let* counters =
    List.fold_left
      (fun acc (n, v) ->
        let* acc = acc in
        match Json.to_int_opt v with
        | Some i -> Ok ((n, i) :: acc)
        | None -> Error (Printf.sprintf "counter %S must be an integer" n))
      (Ok []) counter_kvs
  in
  let* gauges =
    List.fold_left
      (fun acc (n, v) ->
        let* acc = acc in
        match Json.to_float_opt v with
        | Some f -> Ok ((n, f) :: acc)
        | None -> Error (Printf.sprintf "gauge %S must be a number" n))
      (Ok []) gauge_kvs
  in
  let* histograms =
    List.fold_left
      (fun acc (n, v) ->
        let* acc = acc in
        let* hs = hist_of_json v in
        Ok ((n, hs) :: acc))
      (Ok []) hist_kvs
  in
  Ok
    {
      counters = List.rev counters;
      gauges = List.rev gauges;
      histograms = List.rev histograms;
    }

let pp_snapshot ppf snap =
  if snap.counters <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter
      (fun (n, v) -> Format.fprintf ppf "  %-44s %12d@." n v)
      snap.counters
  end;
  if snap.gauges <> [] then begin
    Format.fprintf ppf "gauges:@.";
    List.iter
      (fun (n, v) -> Format.fprintf ppf "  %-44s %12.3f@." n v)
      snap.gauges
  end;
  if snap.histograms <> [] then begin
    Format.fprintf ppf "histograms:%42s %8s %8s %8s %8s@." "count" "p50" "p90"
      "p99" "max";
    List.iter
      (fun (n, hs) ->
        Format.fprintf ppf "  %-44s %7d %8.1f %8.1f %8.1f %8.1f@." n hs.hs_count
          (quantile hs 0.5) (quantile hs 0.9) (quantile hs 0.99) hs.hs_max)
      snap.histograms
  end;
  if snap.counters = [] && snap.gauges = [] && snap.histograms = [] then
    Format.fprintf ppf "(no metrics recorded)@."
