(* Per-domain sharded recording.  Handles carry a small dense id; each
   domain lazily owns a shard (registered once in a global list) whose
   cells are plain arrays indexed by that id.  The hot path — [incr],
   [add], [observe] — therefore touches only domain-local memory: no
   atomics, no locks, no shared cache lines, so instrumentation no
   longer serialises a [Par] pool the way the old mutex-guarded
   histograms and contended atomic counters did.

   Readers ([value], [snapshot]) merge the shards on demand under the
   registry lock.  A merge that races a recording domain may miss its
   very latest increments (plain reads of another domain's cells are
   only guaranteed non-torn, not fresh) — exactly the right trade for
   a live scrape.  After a [Par] join the pool's mutex hand-off makes
   every worker write visible, so end-of-run totals are exact.

   Gauges are the exception: [set] is last-write-wins, which does not
   shard, so they stay one atomic cell each — and they are set from
   cold paths only. *)

type counter = { c_id : int }
type gauge = { g_value : float Atomic.t }
type histogram = { h_id : int }

let nbuckets = 256

(* one histogram's domain-local state; [hf] packs sum/min/max into a
   flat float array so [observe] never boxes *)
type hshard = { hb : int array; mutable hn : int; hf : float array }

let hf_sum = 0
and hf_min = 1
and hf_max = 2

let fresh_hshard () =
  { hb = Array.make nbuckets 0; hn = 0; hf = [| 0.0; infinity; neg_infinity |] }

type shard = {
  mutable s_counters : int array;  (* by c_id *)
  mutable s_hists : hshard option array;  (* by h_id *)
}

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let next_counter_id = ref 0
let next_histogram_id = ref 0
let shards : shard list ref = ref []

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s = { s_counters = Array.make 16 0; s_hists = Array.make 16 None } in
      with_lock registry_mutex (fun () -> shards := s :: !shards);
      s)

let my_shard () = Domain.DLS.get shard_key
let prewarm () = ignore (my_shard ())

let counter name =
  with_lock registry_mutex (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { c_id = !next_counter_id } in
          incr next_counter_id;
          Hashtbl.replace counters name c;
          c)

let gauge name =
  with_lock registry_mutex (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g
      | None ->
          let g = { g_value = Atomic.make 0.0 } in
          Hashtbl.replace gauges name g;
          g)

let histogram name =
  with_lock registry_mutex (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
          let h = { h_id = !next_histogram_id } in
          incr next_histogram_id;
          Hashtbl.replace histograms name h;
          h)

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

(* Cell arrays grow by replacement: the owner allocates a copy, then
   swaps the mutable field.  A concurrent merger holds either array —
   the old one is merely stale, never invalid. *)

let counter_cell s id =
  let n = Array.length s.s_counters in
  if id >= n then begin
    let a = Array.make (max (id + 1) (2 * n)) 0 in
    Array.blit s.s_counters 0 a 0 n;
    s.s_counters <- a
  end;
  s.s_counters

let hist_cell s id =
  let n = Array.length s.s_hists in
  if id >= n then begin
    let a = Array.make (max (id + 1) (2 * n)) None in
    Array.blit s.s_hists 0 a 0 n;
    s.s_hists <- a
  end;
  match s.s_hists.(id) with
  | Some hs -> hs
  | None ->
      let hs = fresh_hshard () in
      s.s_hists.(id) <- Some hs;
      hs

let add c n =
  if Sink.enabled () then begin
    let s = my_shard () in
    let cells = counter_cell s c.c_id in
    cells.(c.c_id) <- cells.(c.c_id) + n
  end

let incr c = add c 1
let set g v = if Sink.enabled () then Atomic.set g.g_value v

(* bucket [i >= 1] covers [2^((i-1)/4), 2^(i/4)); bucket 0 is (-inf, 1) *)
let bucket_index v =
  if not (v >= 1.0) then 0
  else min (nbuckets - 1) (1 + int_of_float (4.0 *. Float.log2 v))

let observe h v =
  if Sink.enabled () then begin
    let s = my_shard () in
    let hs = hist_cell s h.h_id in
    let b = bucket_index v in
    hs.hb.(b) <- hs.hb.(b) + 1;
    hs.hn <- hs.hn + 1;
    hs.hf.(hf_sum) <- hs.hf.(hf_sum) +. v;
    if v < hs.hf.(hf_min) then hs.hf.(hf_min) <- v;
    if v > hs.hf.(hf_max) then hs.hf.(hf_max) <- v
  end

(* ------------------------------------------------------------------ *)
(* Reading (shard merge)                                               *)
(* ------------------------------------------------------------------ *)

let value_locked c =
  List.fold_left
    (fun acc s ->
      let cells = s.s_counters in
      acc + (if c.c_id < Array.length cells then cells.(c.c_id) else 0))
    0 !shards

let value c = with_lock registry_mutex (fun () -> value_locked c)
let gauge_value g = Atomic.get g.g_value

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : (int * int) list;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

let hist_snapshot_locked h =
  let buckets = Array.make nbuckets 0 in
  let count = ref 0 in
  let sum = ref 0.0 in
  let minv = ref infinity in
  let maxv = ref neg_infinity in
  List.iter
    (fun s ->
      let cells = s.s_hists in
      if h.h_id < Array.length cells then
        match cells.(h.h_id) with
        | None -> ()
        | Some hs ->
            for i = 0 to nbuckets - 1 do
              buckets.(i) <- buckets.(i) + hs.hb.(i)
            done;
            count := !count + hs.hn;
            sum := !sum +. hs.hf.(hf_sum);
            if hs.hn > 0 then begin
              if hs.hf.(hf_min) < !minv then minv := hs.hf.(hf_min);
              if hs.hf.(hf_max) > !maxv then maxv := hs.hf.(hf_max)
            end)
    !shards;
  let sparse = ref [] in
  for i = nbuckets - 1 downto 0 do
    if buckets.(i) > 0 then sparse := (i, buckets.(i)) :: !sparse
  done;
  {
    hs_count = !count;
    hs_sum = !sum;
    hs_min = (if !count = 0 then 0.0 else !minv);
    hs_max = (if !count = 0 then 0.0 else !maxv);
    hs_buckets = !sparse;
  }

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  with_lock registry_mutex (fun () ->
      {
        counters =
          Hashtbl.fold (fun n c acc -> (n, value_locked c) :: acc) counters []
          |> List.sort by_name;
        gauges =
          Hashtbl.fold (fun n g acc -> (n, gauge_value g) :: acc) gauges []
          |> List.sort by_name;
        histograms =
          Hashtbl.fold
            (fun n h acc -> (n, hist_snapshot_locked h) :: acc)
            histograms []
          |> List.sort by_name;
      })

let reset () =
  with_lock registry_mutex (fun () ->
      List.iter
        (fun s ->
          Array.fill s.s_counters 0 (Array.length s.s_counters) 0;
          Array.iter
            (function
              | None -> ()
              | Some hs ->
                  Array.fill hs.hb 0 nbuckets 0;
                  hs.hn <- 0;
                  hs.hf.(hf_sum) <- 0.0;
                  hs.hf.(hf_min) <- infinity;
                  hs.hf.(hf_max) <- neg_infinity)
            s.s_hists)
        !shards;
      Hashtbl.iter (fun _ g -> Atomic.set g.g_value 0.0) gauges)

(* Mid-bucket representative on the log scale; the caller clamps. *)
let bucket_representative hs_min i =
  if i = 0 then hs_min else Float.exp2 ((float_of_int i -. 0.5) /. 4.0)

(* The raw log-bucket representative can land outside the observed
   range — e.g. every observation equal to 10 puts the mass in the
   bucket [9.51, 11.31) whose midpoint 10.37 exceeds the recorded max
   — so the estimate is clamped into [min, max] here, at the single
   exit, rather than per-bucket.  Pinned by the regression test in
   test/test_obs.ml. *)
let quantile hs p =
  if hs.hs_count = 0 then 0.0
  else begin
    let p = Float.min 1.0 (Float.max 0.0 p) in
    let target =
      max 1 (int_of_float (Float.ceil (p *. float_of_int hs.hs_count)))
    in
    let rec walk cum = function
      | [] -> hs.hs_max
      | (i, c) :: rest ->
          if cum + c >= target then bucket_representative hs.hs_min i
          else walk (cum + c) rest
    in
    Float.min hs.hs_max (Float.max hs.hs_min (walk 0 hs.hs_buckets))
  end

let find_counter snap name =
  match List.assoc_opt name snap.counters with Some v -> v | None -> 0

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let hist_to_json hs =
  Json.Obj
    [
      ("count", Json.Int hs.hs_count);
      ("sum", Json.Float hs.hs_sum);
      ("min", Json.Float hs.hs_min);
      ("max", Json.Float hs.hs_max);
      ("p50", Json.Float (quantile hs 0.5));
      ("p90", Json.Float (quantile hs 0.9));
      ("p99", Json.Float (quantile hs 0.99));
      ( "buckets",
        Json.List
          (List.map
             (fun (i, c) -> Json.List [ Json.Int i; Json.Int c ])
             hs.hs_buckets) );
    ]

let snapshot_to_json snap =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) snap.counters) );
      ( "gauges",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) snap.gauges) );
      ( "histograms",
        Json.Obj
          (List.map (fun (n, hs) -> (n, hist_to_json hs)) snap.histograms) );
    ]

let hist_of_json j =
  let ( let* ) = Result.bind in
  let field name conv =
    match Json.member name j with
    | Some v -> (
        match conv v with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "histogram member %S has wrong type" name))
    | None -> Error (Printf.sprintf "histogram member %S missing" name)
  in
  let* count = field "count" Json.to_int_opt in
  let* sum = field "sum" Json.to_float_opt in
  let* minv = field "min" Json.to_float_opt in
  let* maxv = field "max" Json.to_float_opt in
  let* bucket_list = field "buckets" Json.to_list_opt in
  let* buckets =
    List.fold_left
      (fun acc b ->
        let* acc = acc in
        match b with
        | Json.List [ i; c ] -> (
            match (Json.to_int_opt i, Json.to_int_opt c) with
            | Some i, Some c -> Ok ((i, c) :: acc)
            | _ -> Error "bucket entries must be integer pairs")
        | _ -> Error "bucket entries must be pairs")
      (Ok []) bucket_list
  in
  Ok
    {
      hs_count = count;
      hs_sum = sum;
      hs_min = minv;
      hs_max = maxv;
      hs_buckets = List.rev buckets;
    }

let snapshot_of_json j =
  let ( let* ) = Result.bind in
  let section name =
    match Json.member name j with
    | Some (Json.Obj kvs) -> Ok kvs
    | Some _ -> Error (Printf.sprintf "section %S must be an object" name)
    | None -> Error (Printf.sprintf "section %S missing" name)
  in
  let* counter_kvs = section "counters" in
  let* gauge_kvs = section "gauges" in
  let* hist_kvs = section "histograms" in
  let* counters =
    List.fold_left
      (fun acc (n, v) ->
        let* acc = acc in
        match Json.to_int_opt v with
        | Some i -> Ok ((n, i) :: acc)
        | None -> Error (Printf.sprintf "counter %S must be an integer" n))
      (Ok []) counter_kvs
  in
  let* gauges =
    List.fold_left
      (fun acc (n, v) ->
        let* acc = acc in
        match Json.to_float_opt v with
        | Some f -> Ok ((n, f) :: acc)
        | None -> Error (Printf.sprintf "gauge %S must be a number" n))
      (Ok []) gauge_kvs
  in
  let* histograms =
    List.fold_left
      (fun acc (n, v) ->
        let* acc = acc in
        let* hs = hist_of_json v in
        Ok ((n, hs) :: acc))
      (Ok []) hist_kvs
  in
  Ok
    {
      counters = List.rev counters;
      gauges = List.rev gauges;
      histograms = List.rev histograms;
    }

let pp_snapshot ppf snap =
  if snap.counters <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter
      (fun (n, v) -> Format.fprintf ppf "  %-44s %12d@." n v)
      snap.counters
  end;
  if snap.gauges <> [] then begin
    Format.fprintf ppf "gauges:@.";
    List.iter
      (fun (n, v) -> Format.fprintf ppf "  %-44s %12.3f@." n v)
      snap.gauges
  end;
  if snap.histograms <> [] then begin
    Format.fprintf ppf "histograms:%42s %8s %8s %8s %8s@." "count" "p50" "p90"
      "p99" "max";
    List.iter
      (fun (n, hs) ->
        Format.fprintf ppf "  %-44s %7d %8.1f %8.1f %8.1f %8.1f@." n hs.hs_count
          (quantile hs 0.5) (quantile hs 0.9) (quantile hs 0.99) hs.hs_max)
      snap.histograms
  end;
  if snap.counters = [] && snap.gauges = [] && snap.histograms = [] then
    Format.fprintf ppf "(no metrics recorded)@."
