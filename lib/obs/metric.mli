(** Named counters, gauges, and log-scale latency histograms.

    Metrics live in a process-global registry keyed by name:
    [counter "erm.hypotheses_enumerated"] returns the same handle
    everywhere, so independent modules can contribute to one series.
    Handles are normally created once at module initialisation and the
    mutating operations ([incr], [add], [observe], [set]) are no-ops
    while {!Sink.enabled} is false.

    {2 Sharded recording}

    Counter and histogram recording is {e per-domain sharded}: each
    domain owns a private shard of plain cells, so the hot path takes
    no lock and touches no shared cache line — a [Par] pool's workers
    record without contending.  Readers ({!value}, {!snapshot}) merge
    the shards on demand under the registry lock.  A merge concurrent
    with recording is a consistent-enough live view (it may miss the
    recording domains' very latest increments); totals read after the
    parallel region has joined are exact.  Gauges are last-write-wins
    and stay a single atomic cell.

    {2 Histograms}

    Histograms bucket observations on a log scale (4 buckets per
    doubling, so quantile estimates are exact to within ~19%) and
    additionally track count, sum, min and max.  They are intended for
    latencies in nanoseconds and for size distributions (BFS frontier
    sizes, induced-subgraph orders, radii). *)

type counter
type gauge
type histogram

(** {1 Creation (registry lookup-or-create)} *)

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

(** {1 Recording — no-ops while the sink is disabled} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

val prewarm : unit -> unit
(** Force-create the calling domain's shard now, so a worker's first
    recording inside a timed region does not pay the registration. *)

(** {1 Reading} *)

val value : counter -> int
val gauge_value : gauge -> float

(** {1 Snapshots} *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;  (** 0 when the histogram is empty *)
  hs_max : float;  (** 0 when the histogram is empty *)
  hs_buckets : (int * int) list;
      (** sparse [(bucket index, count)] pairs, ascending index; bucket
          [i >= 1] covers values in [[2^((i-1)/4), 2^(i/4))], bucket 0
          everything below 1 *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

val snapshot : unit -> snapshot
(** Merged copy of every registered metric.  Exact when no domain is
    recording concurrently (e.g. after a [Par] join); during a live
    run it is the scrape-consistent view described above. *)

val reset : unit -> unit
(** Zero every registered metric in place.  Handles held by
    instrumentation points stay valid. *)

val quantile : hist_snapshot -> float -> float
(** [quantile hs p] for [p] in [[0, 1]]: nearest-rank estimate from the
    log-scale buckets, clamped into [[hs_min, hs_max]].  [0] when
    empty. *)

val find_counter : snapshot -> string -> int
(** Counter value by name, [0] when absent — convenient for telemetry
    emitters that must always produce a key. *)

(** {1 JSON round-trip} *)

val snapshot_to_json : snapshot -> Json.t
(** Histograms additionally carry derived [p50]/[p90]/[p99] members for
    human and dashboard consumption; {!snapshot_of_json} ignores them. *)

val snapshot_of_json : Json.t -> (snapshot, string) result
(** Inverse of {!snapshot_to_json}:
    [snapshot_of_json (snapshot_to_json s) = Ok s]. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
(** Human-readable table: counters, gauges, then histograms with
    count/p50/p90/p99/max columns. *)
