module Json = Json
module Clock = Clock
module Sink = Sink
module Metric = Metric
module Span = Span
module Event = Event

let enable = Sink.enable
let disable = Sink.disable
let enabled = Sink.enabled

let reset_all () =
  Metric.reset ();
  Span.reset ();
  Event.reset ()
