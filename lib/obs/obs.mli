(** folearn.obs — zero-external-dependency observability.

    The layer has three pieces, all gated on one global switch
    ({!Sink}): {!Span} timed regions with text / JSON / Chrome-tracing
    exporters, {!Metric} counters-gauges-histograms with a registry and
    JSON snapshots, and the {!Json} / {!Clock} substrate they share.
    When the sink is disabled (the default) every instrumentation point
    costs a single atomic-load branch, so the library's hot paths stay
    at their uninstrumented speed — see the [overhead] experiment in
    [bench/main.ml] for the check. *)

module Json = Json
module Clock = Clock
module Sink = Sink
module Metric = Metric
module Span = Span
module Event = Event

val enable : unit -> unit
(** Alias of {!Sink.enable}. *)

val disable : unit -> unit
val enabled : unit -> bool

val reset_all : unit -> unit
(** Zero every metric, drop every collected span, and clear the
    flight-recorder ring.  Registered metric handles stay valid. *)
