let flag = Atomic.make false
let enabled () = Atomic.get flag
let enable () = Atomic.set flag true
let disable () = Atomic.set flag false

let with_enabled f =
  let before = Atomic.get flag in
  Atomic.set flag true;
  Fun.protect ~finally:(fun () -> Atomic.set flag before) f
