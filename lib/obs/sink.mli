(** The global instrumentation switch.

    Instrumentation points all over the library ({!Metric} counters,
    {!Span} regions) first consult this flag; when it is off — the
    default — every instrument is a branch on one atomic boolean and
    nothing else, so library hot paths keep their uninstrumented cost
    (checked by the [overhead] micro-benchmark in [bench/main.ml]).
    Select the sink once at startup ([folearn_cli] enables it when
    [--trace]/[--stats] are given; [bench/main.exe] always enables it). *)

val enabled : unit -> bool
(** Is instrumentation recording? *)

val enable : unit -> unit
val disable : unit -> unit

val with_enabled : (unit -> 'a) -> 'a
(** Run the thunk with instrumentation on, restoring the previous state
    afterwards (also on exceptions). *)
