type finished = {
  name : string;
  args : (string * string) list;
  start_ns : int64;
  dur_ns : int64;
  depth : int;
  tid : int;
}

let cap = 1_000_000
let mutex = Mutex.create ()
let collected : finished list ref = ref []
let n_collected = ref 0
let n_dropped = ref 0

let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let record span =
  Mutex.lock mutex;
  if !n_collected < cap then begin
    collected := span :: !collected;
    incr n_collected
  end
  else incr n_dropped;
  Mutex.unlock mutex

let with_ ?(args = []) name f =
  if not (Sink.enabled ()) then f ()
  else begin
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    depth := d + 1;
    Event.record ~kind:"span" ~args:(("span", name) :: args) "span.open";
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now_ns () in
        depth := d;
        Event.record ~kind:"span"
          ~args:
            (("span", name)
            :: ("dur_ns", Int64.to_string (Int64.sub t1 t0))
            :: args)
          "span.close";
        record
          {
            name;
            args;
            start_ns = t0;
            dur_ns = Int64.sub t1 t0;
            depth = d;
            tid = (Domain.self () :> int);
          })
      f
  end

let finished () =
  Mutex.lock mutex;
  (* [collected] is newest-first; sort over the chronological order so
     the stable tie-break keeps recording order when the clock's
     microsecond granularity gives siblings identical start stamps *)
  let spans = List.rev !collected in
  Mutex.unlock mutex;
  List.stable_sort
    (fun a b ->
      match Int64.compare a.start_ns b.start_ns with
      | 0 -> compare a.depth b.depth
      | c -> c)
    spans

let count () =
  Mutex.lock mutex;
  let n = !n_collected in
  Mutex.unlock mutex;
  n

let dropped () =
  Mutex.lock mutex;
  let n = !n_dropped in
  Mutex.unlock mutex;
  n

let reset () =
  Mutex.lock mutex;
  collected := [];
  n_collected := 0;
  n_dropped := 0;
  Mutex.unlock mutex

let args_json args =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) args)

let to_json () =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [
             ("name", Json.String s.name);
             ("start_ns", Json.Int (Int64.to_int s.start_ns));
             ("dur_ns", Json.Int (Int64.to_int s.dur_ns));
             ("depth", Json.Int s.depth);
             ("tid", Json.Int s.tid);
             ("args", args_json s.args);
           ])
       (finished ()))

let chrome_trace () =
  let events =
    List.map
      (fun s ->
        Json.Obj
          [
            ("name", Json.String s.name);
            ("cat", Json.String "folearn");
            ("ph", Json.String "X");
            ("ts", Json.Float (Int64.to_float s.start_ns /. 1e3));
            ("dur", Json.Float (Int64.to_float s.dur_ns /. 1e3));
            ("pid", Json.Int 1);
            ("tid", Json.Int s.tid);
            ("args", args_json s.args);
          ])
      (finished ())
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms");
    ]

let pp_text ppf () =
  List.iter
    (fun s ->
      Format.fprintf ppf "%s%s  %.3f ms%s@."
        (String.make (2 * s.depth) ' ')
        s.name
        (Int64.to_float s.dur_ns /. 1e6)
        (match s.args with
        | [] -> ""
        | args ->
            "  ["
            ^ String.concat ", "
                (List.map (fun (k, v) -> k ^ "=" ^ v) args)
            ^ "]"))
    (finished ())
