(** Nestable timed regions with a thread-safe in-memory collector.

    [with_ "erm_brute.solve" f] times [f] on the monotonic clock and
    records a finished-span record when the sink is enabled; when it is
    disabled the call is a single branch around [f ()].  Nesting depth
    is tracked per domain, so concurrent solvers produce independent
    span stacks distinguished by [tid].

    Exporters: human text ({!pp_text}), plain JSON ({!to_json}), and
    the Chrome trace-event format ({!chrome_trace}) loadable in
    [chrome://tracing] / [ui.perfetto.dev]. *)

type finished = {
  name : string;
  args : (string * string) list;  (** free-form key/value annotations *)
  start_ns : int64;  (** {!Clock.now_ns} at entry *)
  dur_ns : int64;
  depth : int;  (** nesting depth within the recording domain, 0 = root *)
  tid : int;  (** recording domain id *)
}

val with_ : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  The span is recorded even when the
    thunk raises (the exception is re-raised). *)

val finished : unit -> finished list
(** Every recorded span, ordered by start time (parents before their
    children). *)

val count : unit -> int
val dropped : unit -> int
(** Spans discarded because the collector cap (1,000,000 spans) was
    reached — guards against runaway instrumentation in long loops. *)

val reset : unit -> unit

(** {1 Exporters} *)

val to_json : unit -> Json.t
(** A JSON list of span objects
    [{"name", "start_ns", "dur_ns", "depth", "tid", "args"}]. *)

val chrome_trace : unit -> Json.t
(** The Chrome trace-event document:
    [{"traceEvents": [{"ph": "X", ...}], "displayTimeUnit": "ms"}].
    Timestamps and durations are microseconds, as the format demands. *)

val pp_text : Format.formatter -> unit -> unit
(** Indented tree, one span per line with its duration. *)
