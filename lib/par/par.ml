(* A fixed-size domain pool with index-ordered reduction.  See the .mli
   for the determinism contract; the implementation notes here cover the
   synchronisation argument.

   One [run] publishes a "job": a claim-loop closure over an atomic
   next-task counter.  Workers park on [have_work] between jobs; the
   caller participates in its own job, then waits on [work_done] until
   the completion counter reaches [tasks].  Every task index is claimed
   exactly once ([Atomic.fetch_and_add]), and a worker registers itself
   in [active] (under the pool mutex) before it can claim anything, so
   [completed < tasks] implies a registered worker still holds a task
   and will broadcast when it finishes.  Result visibility: a task's
   plain writes happen before its [completed] increment (atomic), and
   the caller reads [completed = tasks] before touching results, so all
   writes are visible by the usual release/acquire argument. *)

(* per-domain attribution: tasks executed by each pool slot (slot 0 is
   the calling domain), plus one span per parallel region *)
let slot_counter slot =
  Obs.Metric.counter (Printf.sprintf "par.tasks.slot%d" slot)

module Pool = struct
  type t = {
    size : int;
    m : Mutex.t;
    have_work : Condition.t;
    work_done : Condition.t;
    mutable epoch : int;
    mutable job : (slot:int -> unit) option;
    mutable active : int;
    mutable stopping : bool;
    mutable spawned : bool;
    mutable domains : unit Domain.t list;
    slot_counters : Obs.Metric.counter array;
  }

  let create ~jobs =
    let size = max 1 (min jobs (Domain.recommended_domain_count ())) in
    {
      size;
      m = Mutex.create ();
      have_work = Condition.create ();
      work_done = Condition.create ();
      epoch = 0;
      job = None;
      active = 0;
      stopping = false;
      spawned = false;
      domains = [];
      slot_counters = Array.init size slot_counter;
    }

  let size t = t.size

  let rec worker_loop t ~slot last_epoch =
    Mutex.lock t.m;
    while (not t.stopping) && (t.epoch = last_epoch || t.job = None) do
      Condition.wait t.have_work t.m
    done;
    if t.stopping then Mutex.unlock t.m
    else begin
      let epoch = t.epoch in
      let job = Option.get t.job in
      t.active <- t.active + 1;
      Mutex.unlock t.m;
      (try job ~slot with _ -> () (* jobs catch their own exceptions *));
      Mutex.lock t.m;
      t.active <- t.active - 1;
      Condition.broadcast t.work_done;
      Mutex.unlock t.m;
      worker_loop t ~slot epoch
    end

  let ensure_spawned t =
    if not t.spawned then begin
      t.spawned <- true;
      t.domains <-
        List.init (t.size - 1) (fun i ->
            Domain.spawn (fun () ->
                (* register this domain's metric shard before any timed
                   work so the first in-task [incr] is just a store *)
                Obs.Metric.prewarm ();
                worker_loop t ~slot:(i + 1) t.epoch))
    end

  let shutdown t =
    Mutex.lock t.m;
    t.stopping <- true;
    Condition.broadcast t.have_work;
    Mutex.unlock t.m;
    let ds = t.domains in
    t.domains <- [];
    List.iter Domain.join ds

  (* Publish [claim] to the workers, run it on the caller too, and wait
     until [completed] says every task has settled. *)
  let drive t ~tasks ~(claim : slot:int -> unit) ~(completed : int Atomic.t) =
    ensure_spawned t;
    Mutex.lock t.m;
    t.job <- Some claim;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.have_work;
    Mutex.unlock t.m;
    claim ~slot:0;
    Mutex.lock t.m;
    while Atomic.get completed < tasks do
      Condition.wait t.work_done t.m
    done;
    t.job <- None;
    Mutex.unlock t.m
end

(* ------------------------------------------------------------------ *)
(* Default pool configuration                                          *)
(* ------------------------------------------------------------------ *)

let env_jobs () =
  match Sys.getenv_opt "FOLEARN_JOBS" with
  | None -> 1
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 1)

let configured_jobs = ref None
let default_pool = ref None
let at_exit_registered = ref false

let jobs () =
  match !configured_jobs with Some n -> n | None -> env_jobs ()

let shutdown_default () =
  match !default_pool with
  | None -> ()
  | Some p ->
      default_pool := None;
      Pool.shutdown p

let set_jobs n =
  if n < 1 then invalid_arg "Par.set_jobs: jobs must be >= 1";
  configured_jobs := Some n;
  shutdown_default ()

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = Pool.create ~jobs:(jobs ()) in
      default_pool := Some p;
      if not !at_exit_registered then begin
        at_exit_registered := true;
        at_exit shutdown_default
      end;
      p

(* ------------------------------------------------------------------ *)
(* Combinators                                                         *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Fault isolation                                                     *)
(* ------------------------------------------------------------------ *)

(* A worker exception poisons only its own task: the task is re-queued
   and retried (bounded attempts, preferring a different slot) before
   its failure becomes final.  Exceptions that are deterministic by
   construction — programmer errors, and anything a subsystem registers
   via [register_no_retry] (Guard's internal stop signal) — skip the
   retries: re-running them is pure waste, and for Guard it would
   perturb deterministic fault accounting. *)

let max_attempts = 3

let no_retry_predicates : (exn -> bool) list ref = ref []
let register_no_retry p = no_retry_predicates := p :: !no_retry_predicates

let non_retryable e =
  (match e with
  | Invalid_argument _ | Assert_failure _ | Match_failure _ | Not_found
  | Out_of_memory | Stack_overflow ->
      true
  | _ -> false)
  || List.exists (fun p -> p e) !no_retry_predicates

let task_retries = Obs.Metric.counter "par.task_retries"

let record_retry ~task ~attempt ~slot e =
  Obs.Metric.incr task_retries;
  Obs.Event.record ~kind:"par"
    ~args:
      [
        ("task", string_of_int task);
        ("attempt", string_of_int attempt);
        ("slot", string_of_int slot);
        ("exn", Printexc.to_string e);
      ]
    "par.retry"

let run (t : Pool.t) ~tasks f =
  if tasks > 0 then
    if t.Pool.size <= 1 || tasks = 1 || t.Pool.stopping then
      (* the inline path honours the same fault-isolation contract as
         the pooled one: a retryable exception gets [max_attempts]
         tries before it propagates *)
      for i = 0 to tasks - 1 do
        let rec attempt k =
          try f i
          with e when k < max_attempts && not (non_retryable e) ->
            record_retry ~task:i ~attempt:k ~slot:0 e;
            attempt (k + 1)
        in
        attempt 1
      done
    else
      Obs.Span.with_ "par.run"
        ~args:
          [ ("jobs", string_of_int t.Pool.size);
            ("tasks", string_of_int tasks) ]
      @@ fun () ->
      let next = Atomic.make 0 in
      let completed = Atomic.make 0 in
      let failure : (int * exn * Printexc.raw_backtrace) option Atomic.t =
        Atomic.make None
      in
      (* keep the lowest-indexed failure, whatever the completion order *)
      let rec record_failure i e bt =
        match Atomic.get failure with
        | Some (j, _, _) when j <= i -> ()
        | cur ->
            if not (Atomic.compare_and_set failure cur (Some (i, e, bt))) then
              record_failure i e bt
      in
      (* retry queue: tasks whose last attempt raised a retryable
         exception, tagged with the slot that failed so another slot
         picks them up first (best-effort: the failing slot itself
         drains its own entries once fresh indices run out, so progress
         never depends on a second live worker). *)
      let retry_m = Mutex.create () in
      let retries :
          (int * int * int * exn * Printexc.raw_backtrace) list ref =
        ref []
      in
      let push_retry entry =
        Mutex.lock retry_m;
        retries := entry :: !retries;
        Mutex.unlock retry_m
      in
      let take_retry ~slot ~any =
        Mutex.lock retry_m;
        let rec pick acc = function
          | [] -> None
          | ((_, _, s, _, _) as r) :: rest when any || s <> slot ->
              retries := List.rev_append acc rest;
              Some r
          | r :: rest -> pick (r :: acc) rest
        in
        let r = pick [] !retries in
        Mutex.unlock retry_m;
        r
      in
      let executed = Array.make t.Pool.size 0 in
      (* run attempt [attempt] of task [i]; settles the task (bumps
         [completed]) unless it was re-queued for another try *)
      let exec ~slot i attempt last_exn =
        let settle () = ignore (Atomic.fetch_and_add completed 1) in
        if Atomic.get failure <> None then begin
          (* after a final failure, drain without running: the run's
             result is that failure anyway — but a task that already
             raised must still be recorded, or a transient fault at a
             low index could be masked by a final failure at a higher
             one *)
          (match last_exn with
          | Some (e, bt) -> record_failure i e bt
          | None -> ());
          settle ()
        end
        else
          match f i with
          | () ->
              executed.(slot) <- executed.(slot) + 1;
              settle ()
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              executed.(slot) <- executed.(slot) + 1;
              if attempt >= max_attempts || non_retryable e then begin
                record_failure i e bt;
                settle ()
              end
              else begin
                record_retry ~task:i ~attempt ~slot e;
                push_retry (i, attempt + 1, slot, e, bt)
              end
      in
      let claim ~slot =
        let continue = ref true in
        while !continue do
          match take_retry ~slot ~any:false with
          | Some (i, attempt, _, e, bt) -> exec ~slot i attempt (Some (e, bt))
          | None -> (
              let i = Atomic.fetch_and_add next 1 in
              if i < tasks then exec ~slot i 1 None
              else
                (* fresh work is gone; drain retries banned for this
                   slot too, then exit *)
                match take_retry ~slot ~any:true with
                | Some (i, attempt, _, e, bt) ->
                    exec ~slot i attempt (Some (e, bt))
                | None -> continue := false)
        done;
        if executed.(slot) > 0 && Obs.Sink.enabled () then
          Obs.Metric.add t.Pool.slot_counters.(slot) executed.(slot)
      in
      Pool.drive t ~tasks ~claim ~completed;
      match Atomic.get failure with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()

let map_tasks t ~tasks f =
  if tasks = 0 then [||]
  else begin
    let results = Array.make tasks None in
    run t ~tasks (fun i -> results.(i) <- Some (f i));
    Array.map
      (function Some v -> v | None -> assert false (* run raised *))
      results
  end

let map_list t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
      let arr = Array.of_list xs in
      Array.to_list (map_tasks t ~tasks:(Array.length arr) (fun i -> f arr.(i)))

let map_reduce_chunks t ~n ?chunk ~map ~reduce ~init () =
  if n <= 0 then init
  else begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Par.map_reduce_chunks: chunk must be >= 1"
      | None -> max 1 (n / (4 * Pool.size t))
    in
    let tasks = (n + chunk - 1) / chunk in
    let pieces =
      map_tasks t ~tasks (fun c ->
          let lo = c * chunk in
          map lo (min n (lo + chunk)))
    in
    Array.fold_left reduce init pieces
  end
