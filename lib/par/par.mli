(** Deterministic domain-parallelism for the ERM solvers.

    A fixed-size pool of OCaml 5 [Domain]s executes chunked [map]/[fold]
    work lists.  The design invariant — relied on by every caller in
    [lib/core] — is that the {e observable result} of a parallel run is
    bit-identical to the sequential one:

    - tasks are identified by a dense index [0 .. tasks-1];
    - results are stored by index and reduced {b in index order}, never
      in completion order, so the streaming enumerators' first-best
      tie-breaking ("keep the earliest candidate on equal error") is
      preserved;
    - if several tasks raise, the exception of the {e lowest-indexed}
      failing task is re-raised after all in-flight tasks have settled —
      matching the sequential run, where the earliest failure wins.

    A pool of size 1 spawns no domains and runs every combinator inline;
    its overhead over a plain loop is a bounds check per task.

    Workers are spawned lazily on first use and parked on a condition
    variable between calls, so an idle pool costs nothing.  Nested
    [run]s on one pool are not supported (the solvers never nest);
    create a second pool if you need one inside a task. *)

module Pool : sig
  type t

  val create : jobs:int -> t
  (** A pool executing at most [jobs] tasks concurrently ([jobs - 1]
      worker domains plus the calling domain).  [jobs] is clamped to
      [\[1; Domain.recommended_domain_count ()\]].  Workers are spawned
      on the first parallel call, not here. *)

  val size : t -> int
  (** The parallelism degree (including the caller). *)

  val shutdown : t -> unit
  (** Join the worker domains.  Idempotent; the pool degrades to
      sequential (size-1 semantics) afterwards. *)
end

val set_jobs : int -> unit
(** Configure the default pool size (the CLI's [--jobs]).  Replaces the
    default pool; the previous one is shut down. *)

val jobs : unit -> int
(** Current default pool size: the last [set_jobs] value, else the
    [FOLEARN_JOBS] environment variable, else [1]. *)

val default : unit -> Pool.t
(** The process-wide default pool, sized by {!jobs}.  Shut down
    automatically at exit. *)

val run : Pool.t -> tasks:int -> (int -> unit) -> unit
(** [run pool ~tasks f] executes [f 0 .. f (tasks-1)], work-stealing
    across the pool.  Returns when every task has settled.

    {b Fault isolation.}  A worker exception poisons only its own
    task: the task is re-queued and retried (three attempts in total),
    preferring a slot other than the one that failed — best-effort;
    with a single live worker the failing slot retries its own task,
    so progress never depends on a second worker.  A task still
    failing after its last attempt makes the run fail: remaining tasks
    are drained without running, and the exception of the
    {e lowest-indexed} finally-failing task is re-raised {b with the
    worker's original backtrace}
    ({!Printexc.raise_with_backtrace}) — matching the sequential run,
    where the earliest failure wins.  Deterministic exceptions
    ([Invalid_argument], [Assert_failure], [Match_failure],
    [Not_found], [Out_of_memory], [Stack_overflow], and anything
    registered via {!register_no_retry}) are never retried.

    Retries re-run the whole task, so a task that both mutates shared
    state and raises transiently may over-count side effects (the
    solvers' tasks only publish results at the end, so their outputs
    are unaffected).  A size-1 pool runs inline on the caller but
    honours the same contract: retryable exceptions get the same
    bounded attempts before propagating, so fault behaviour does not
    depend on the pool size. *)

val register_no_retry : (exn -> bool) -> unit
(** Mark an exception class as not-a-fault: {!run} fails the task on
    first raise instead of retrying.  Used by [Guard] for its internal
    stop signal (a budget trip is control flow, not a crash). *)

val non_retryable : exn -> bool
(** The pool's transient-vs-deterministic classification: true for the
    programmer-error class above and everything registered via
    {!register_no_retry}.  Exported so [folearn.fleet] applies the
    {e same} policy across processes that {!run} applies across
    domains — a deterministic chunk failure goes to quarantine instead
    of burning retries. *)

val map_tasks : Pool.t -> tasks:int -> (int -> 'a) -> 'a array
(** Like {!run}, collecting results in index order. *)

val map_list : Pool.t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list pool f xs] is [List.map f xs], order preserved. *)

val map_reduce_chunks :
  Pool.t ->
  n:int ->
  ?chunk:int ->
  map:(int -> int -> 'a) ->
  reduce:('acc -> 'a -> 'acc) ->
  init:'acc ->
  unit ->
  'acc
(** [map_reduce_chunks pool ~n ~map ~reduce ~init ()] splits the index
    range [0..n-1] into contiguous chunks, evaluates [map lo hi] (hi
    exclusive) for each in parallel, then folds the chunk results with
    [reduce] {b sequentially, in chunk order} on the calling domain.
    [chunk] defaults to [n / (4 * size)] (at least 1): about four chunks
    per worker for load balance. *)
