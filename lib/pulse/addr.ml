type t = Unix_sock of string | Tcp of string * int

let parse s =
  let s = String.trim s in
  if s = "" then Error "empty address"
  else if String.length s >= 5 && String.sub s 0 5 = "unix:" then begin
    let path = String.sub s 5 (String.length s - 5) in
    if path = "" then Error "unix: address needs a socket path"
    else Ok (Unix_sock path)
  end
  else
    let port_of p =
      match int_of_string_opt p with
      | Some n when n >= 0 && n <= 65535 -> Some n
      | _ -> None
    in
    match String.rindex_opt s ':' with
    | None -> (
        match port_of s with
        | Some p -> Ok (Tcp ("127.0.0.1", p))
        | None ->
            Error
              (Printf.sprintf
                 "cannot parse address %S (expected unix:PATH, HOST:PORT, \
                  :PORT or PORT)"
                 s))
    | Some i -> (
        let host = String.sub s 0 i in
        let port_s = String.sub s (i + 1) (String.length s - i - 1) in
        match port_of port_s with
        | Some p -> Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
        | None -> Error (Printf.sprintf "bad port %S in address %S" port_s s))

let to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

let sockaddr = function
  | Unix_sock p -> Ok (Unix.ADDR_UNIX p)
  | Tcp (host, port) -> (
      match Unix.inet_addr_of_string host with
      | addr -> Ok (Unix.ADDR_INET (addr, port))
      | exception _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
              Error (Printf.sprintf "unknown host %S" host)
          | h -> Ok (Unix.ADDR_INET (h.Unix.h_addr_list.(0), port))))
