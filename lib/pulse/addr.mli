(** Listen/connect address syntax shared by [--metrics-addr] and
    [folearn_cli pulse]: a Unix-domain socket path or a TCP endpoint.

    Accepted spellings: [unix:/path/to.sock], [host:port], [:port] and
    bare [port] (both meaning 127.0.0.1). *)

type t = Unix_sock of string | Tcp of string * int

val parse : string -> (t, string) result

val to_string : t -> string
(** Round-trips with {!parse}. *)

val sockaddr : t -> (Unix.sockaddr, string) result
(** Resolve to a bindable/connectable [Unix.sockaddr]; resolves TCP
    host names via [gethostbyname]. *)
