let read_all fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
  in
  (try go () with Unix.Unix_error _ -> ());
  Buffer.contents buf

let split_response resp =
  let sep = "\r\n\r\n" in
  let rec find i =
    if i + 4 > String.length resp then None
    else if String.sub resp i 4 = sep then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> Error "malformed HTTP response (no header terminator)"
  | Some i ->
      let head = String.sub resp 0 i in
      let body = String.sub resp (i + 4) (String.length resp - i - 4) in
      let status_line =
        match String.index_opt head '\r' with
        | Some nl -> String.sub head 0 nl
        | None -> head
      in
      Ok (status_line, body)

let get addr path =
  match Addr.sockaddr addr with
  | Error e -> Error e
  | Ok sa -> (
      let dom_kind =
        match sa with
        | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
        | Unix.ADDR_INET _ -> Unix.PF_INET
      in
      let fd = Unix.socket dom_kind Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          match Unix.connect fd sa with
          | exception Unix.Unix_error (err, _, _) ->
              Error
                (Printf.sprintf "connect %s: %s" (Addr.to_string addr)
                   (Unix.error_message err))
          | () -> (
              (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
               with _ -> ());
              let req =
                Printf.sprintf
                  "GET %s HTTP/1.0\r\nHost: folearn\r\nConnection: \
                   close\r\n\r\n"
                  path
              in
              let n = String.length req in
              let written = ref 0 in
              while !written < n do
                written :=
                  !written + Unix.write_substring fd req !written (n - !written)
              done;
              match split_response (read_all fd) with
              | Error e -> Error e
              | Ok (status, body) ->
                  if
                    String.split_on_char ' ' status
                    |> List.exists (fun tok -> tok = "200")
                  then Ok body
                  else Error (Printf.sprintf "%s: %s" status (String.trim body)))))
