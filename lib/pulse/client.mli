(** A matching minimal HTTP/1.0 client, for [folearn_cli pulse], the
    exporter-overhead bench scraper, and the tests — so the repo keeps
    its zero-external-dependency rule on both ends of the socket. *)

val get : Addr.t -> string -> (string, string) result
(** [get addr "/metrics"] returns the response body on HTTP 200, and a
    descriptive error on connect failure, malformed response, or any
    other status. *)
