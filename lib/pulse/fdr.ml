(* The flight-data-recorder file: the in-memory Obs.Event ring,
   persisted in the same header style as Resil snapshots so external
   tooling can validate it with nothing but zlib.crc32:

     FOLEARNFDR1 <crc32-hex> <body-length>\n<body JSON>\n

   A SIGKILL cannot run any handler, so readability after a hard kill
   comes from write cadence, not from a dump hook: [attach] writes an
   initial (possibly empty) dump immediately and then rides the
   Obs.Event post-record hook, rewriting the file every [flush_every]
   events.  Writes go through [Resil.atomic_write] (no fsync — a
   flight recorder wants freshness, and a torn file is impossible
   anyway), so the file on disk is always a complete, decodable dump.
   Guard exhaustion and signal shutdown dumps are explicit [dump_now]
   calls from the CLI; uncaught exceptions dump from the installed
   handler before the standard fatal-error report. *)

let magic = "FOLEARNFDR1"
let schema_version = 1

type dump = {
  reason : string;
  written_ns : int64;
  pid : int;
  total : int;
  dropped : int;
  events : Obs.Event.t list;
}

let to_json d =
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int schema_version);
      ("reason", Obs.Json.String d.reason);
      ("written_ns", Obs.Json.Int (Int64.to_int d.written_ns));
      ("pid", Obs.Json.Int d.pid);
      ("total", Obs.Json.Int d.total);
      ("dropped", Obs.Json.Int d.dropped);
      ("events", Obs.Json.List (List.map Obs.Event.to_json d.events));
    ]

let of_json j =
  let open Obs.Json in
  let int_field name =
    match Option.bind (member name j) to_int_opt with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or non-int field %S" name)
  in
  let ( let* ) = Result.bind in
  let* version = int_field "schema_version" in
  if version <> schema_version then
    Error (Printf.sprintf "unsupported schema_version %d" version)
  else
    let* reason =
      match Option.bind (member "reason" j) to_string_opt with
      | Some r -> Ok r
      | None -> Error "missing or non-string field \"reason\""
    in
    let* written_ns = int_field "written_ns" in
    let* pid = int_field "pid" in
    let* total = int_field "total" in
    let* dropped = int_field "dropped" in
    let* events =
      match member "events" j with
      | Some (List es) ->
          List.fold_left
            (fun acc e ->
              let* acc = acc in
              let* ev = Obs.Event.of_json e in
              Ok (ev :: acc))
            (Ok []) es
          |> Result.map List.rev
      | _ -> Error "missing or malformed \"events\" list"
    in
    Ok { reason; written_ns = Int64.of_int written_ns; pid; total; dropped; events }

let encode d =
  let body = Obs.Json.to_string (to_json d) in
  Printf.sprintf "%s %s %d\n%s\n" magic
    (Resil.Crc32.to_hex (Resil.Crc32.string body))
    (String.length body) body

let decode data =
  match String.index_opt data '\n' with
  | None -> Error "missing header line"
  | Some nl -> (
      let header = String.sub data 0 nl in
      match String.split_on_char ' ' header with
      | [ m; crc_hex; len_s ] when m = magic -> (
          match
            (int_of_string_opt ("0x" ^ crc_hex), int_of_string_opt len_s)
          with
          | Some crc, Some len ->
              if String.length data < nl + 1 + len then Error "truncated body"
              else
                let body = String.sub data (nl + 1) len in
                let actual =
                  Int32.to_int (Resil.Crc32.string body) land 0xFFFFFFFF
                in
                if actual <> crc land 0xFFFFFFFF then
                  Error
                    (Printf.sprintf "CRC mismatch (header %08x, body %08x)"
                       crc actual)
                else (
                  match Obs.Json.of_string body with
                  | Error e -> Error ("body is not JSON: " ^ e)
                  | Ok j -> of_json j)
          | _ -> Error "malformed header fields"
          | exception _ -> Error "malformed header fields")
      | m :: _ when m <> magic -> Error (Printf.sprintf "bad magic %S" m)
      | _ -> Error "malformed header line")

let capture ~reason =
  {
    reason;
    written_ns = Obs.Clock.now_ns ();
    pid = Unix.getpid ();
    total = Obs.Event.total ();
    dropped = Obs.Event.dropped ();
    events = Obs.Event.dump ();
  }

let write ~path ~reason =
  Resil.atomic_write ~fsync:false ~path (encode (capture ~reason))

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | data -> decode data

(* ------------------------------------------------------------------ *)
(* Attachment: cadence + crash dumps into one configured file          *)
(* ------------------------------------------------------------------ *)

type attached = { path : string; flush_every : int; pending : int Atomic.t }

let attached : attached option Atomic.t = Atomic.make None

(* one writer at a time; a contended cadence flush is simply skipped *)
let write_mutex = Mutex.create ()

let dump_now ~reason =
  match Atomic.get attached with
  | None -> ()
  | Some a ->
      if Mutex.try_lock write_mutex then
        Fun.protect
          ~finally:(fun () -> Mutex.unlock write_mutex)
          (fun () -> try write ~path:a.path ~reason with _ -> ())

let event_hook () =
  match Atomic.get attached with
  | None -> ()
  | Some a ->
      let n = Atomic.fetch_and_add a.pending 1 + 1 in
      if n >= a.flush_every then begin
        Atomic.set a.pending 0;
        dump_now ~reason:"cadence"
      end

let crash_handler e bt =
  (try
     Obs.Event.record ~kind:"crash"
       ~args:[ ("exn", Printexc.to_string e) ]
       "crash.uncaught"
   with _ -> ());
  dump_now ~reason:"crash";
  (* preserve the runtime's fatal-error report; the process still
     exits 2 once this handler returns *)
  Printf.eprintf "Fatal error: exception %s\n" (Printexc.to_string e);
  if Printexc.backtrace_status () then
    prerr_string (Printexc.raw_backtrace_to_string bt)

let exit_hook_registered = ref false

let attach ?(flush_every = 32) ~path () =
  if flush_every < 1 then
    invalid_arg "Fdr.attach: flush_every must be >= 1";
  Atomic.set attached (Some { path; flush_every; pending = Atomic.make 0 });
  Obs.Event.set_hook (Some event_hook);
  Printexc.set_uncaught_exception_handler crash_handler;
  if not !exit_hook_registered then begin
    exit_hook_registered := true;
    at_exit (fun () -> dump_now ~reason:"exit")
  end;
  (* the file exists and decodes from the very first moment, so even an
     immediate SIGKILL leaves a readable dump *)
  dump_now ~reason:"attach"

let detach () =
  Atomic.set attached None;
  Obs.Event.set_hook None

let pp ppf d =
  Format.fprintf ppf
    "flight recorder dump: reason=%s pid=%d events=%d (of %d recorded, %d \
     dropped)@."
    d.reason d.pid (List.length d.events) d.total d.dropped;
  List.iter (fun e -> Format.fprintf ppf "  %a@." Obs.Event.pp e) d.events
