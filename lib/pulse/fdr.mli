(** The crash flight recorder's durable dump: the {!Obs.Event} ring
    persisted as a [FOLEARNFDR1] file.

    {b File format} — one ASCII header line, then a JSON body, in the
    style of [FOLEARNSNAP1] so external tooling can validate it with
    [zlib.crc32] alone:
    {v FOLEARNFDR1 <crc32-hex> <body-length>
<body JSON> v}

    {b Dump triggers.}  SIGKILL runs no handler, so post-hard-kill
    readability comes from cadence: {!attach} writes the file
    immediately and then every [flush_every] recorded events (riding
    {!Obs.Event.set_hook}), always through [Resil.atomic_write] — the
    on-disk file is never torn.  On top of that cadence, uncaught
    exceptions dump via an installed handler, process exit dumps from
    [at_exit], and the CLI calls {!dump_now} on Guard exhaustion and
    signal shutdown. *)

val magic : string
val schema_version : int

type dump = {
  reason : string;
      (** what triggered the write: "attach", "cadence", "exit",
          "crash", or a CLI-supplied reason such as "guard.exhausted" *)
  written_ns : int64;
  pid : int;
  total : int;  (** events recorded in-process, including overwritten *)
  dropped : int;  (** events lost to ring wrap *)
  events : Obs.Event.t list;  (** surviving events, oldest first *)
}

val encode : dump -> string

val decode : string -> (dump, string) result
(** [decode (encode d) = Ok d]; corruption of magic, length, CRC or
    JSON shape yields [Error]. *)

val capture : reason:string -> dump
(** Snapshot the live ring into a dump record. *)

val write : path:string -> reason:string -> unit
(** [capture] + atomic write, regardless of attachment state. *)

val load : string -> (dump, string) result

val attach : ?flush_every:int -> path:string -> unit -> unit
(** Start recording to [path]: write an initial dump now, rewrite every
    [flush_every] (default 32) events, dump on uncaught exceptions and
    at process exit. *)

val detach : unit -> unit
(** Stop the cadence writer (tests); the file keeps its last dump. *)

val dump_now : reason:string -> unit
(** Force a dump to the attached path (no-op when not attached; never
    raises). *)

val pp : Format.formatter -> dump -> unit
(** Human rendering for [folearn_cli pulse]. *)
