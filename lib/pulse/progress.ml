type t = {
  run_id : string;
  solver : string;
  frontier : int;
  total : int option;
  best : (int * int) option;
  sample_size : int;
  fuel_spent : int option;
  elapsed_ns : int64 option;
  fuel_lo : int option;
  fuel_hi : int option;
}

let frac num den =
  if den <= 0 then None
  else Some (Float.min 1.0 (float_of_int num /. float_of_int den))

let to_json p =
  let opt_int = function None -> Obs.Json.Null | Some i -> Obs.Json.Int i in
  let opt_float = function
    | None -> Obs.Json.Null
    | Some f -> Obs.Json.Float f
  in
  let best_err =
    match p.best with
    | Some (_, e) when p.sample_size > 0 ->
        Some (float_of_int e /. float_of_int p.sample_size)
    | _ -> None
  in
  (* % complete the way a scraper wants it: observed Guard spend over
     the plan's fuel_hi envelope (the PR 6 cost model), with the
     settled-frontier fraction as a second, enumeration-level view *)
  let complete_frac =
    match (p.fuel_spent, p.fuel_hi) with
    | Some spent, Some hi -> frac spent hi
    | _ -> None
  in
  let frontier_frac =
    match p.total with Some total -> frac p.frontier total | None -> None
  in
  Obs.Json.Obj
    [
      ("run_id", Obs.Json.String p.run_id);
      ("solver", Obs.Json.String p.solver);
      ("frontier", Obs.Json.Int p.frontier);
      ("total", opt_int p.total);
      ( "best",
        match p.best with
        | None -> Obs.Json.Null
        | Some (i, e) ->
            Obs.Json.Obj
              [ ("index", Obs.Json.Int i); ("errors", Obs.Json.Int e) ] );
      ("best_err", opt_float best_err);
      ("sample_size", Obs.Json.Int p.sample_size);
      ("fuel_spent", opt_int p.fuel_spent);
      ( "elapsed_ns",
        match p.elapsed_ns with
        | None -> Obs.Json.Null
        | Some ns -> Obs.Json.Int (Int64.to_int ns) );
      ("fuel_lo", opt_int p.fuel_lo);
      ("fuel_hi", opt_int p.fuel_hi);
      ("frontier_frac", opt_float frontier_frac);
      ("complete_frac", opt_float complete_frac);
    ]
