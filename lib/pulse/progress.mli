(** The [/progress] payload: live run state assembled by the CLI's
    sampler and rendered for scrapers.

    The record marries three layers: the [Resil.Ctl] settled-chunk
    frontier and best-so-far, the [Guard] budget spend, and the
    [Analysis.Plan] cost envelope ([fuel_lo]/[fuel_hi]) — so a scraper
    can compute percent-complete as [fuel_spent / fuel_hi] (emitted
    pre-divided as [complete_frac], alongside the enumeration-level
    [frontier_frac] = frontier/total). *)

type t = {
  run_id : string;
  solver : string;
  frontier : int;  (** settled-candidate frontier *)
  total : int option;  (** candidate count, when it fits in an [int] *)
  best : (int * int) option;  (** best-so-far [(index, error count)] *)
  sample_size : int;
  fuel_spent : int option;  (** observed Guard fuel *)
  elapsed_ns : int64 option;
  fuel_lo : int option;  (** plan envelope lower bound, when finite *)
  fuel_hi : int option;  (** plan envelope upper bound, when finite *)
}

val to_json : t -> Obs.Json.t
(** Adds derived [best_err] (errors / sample size), [frontier_frac]
    and [complete_frac] members; absent data is [null], and fractions
    are clamped to [[0, 1]]. *)
