(* Prometheus text exposition (version 0.0.4) of an obs snapshot.
   Counters map to counters, gauges to gauges, and the log-bucket
   histograms to summaries (pre-computed p50/p90/p99 quantiles plus
   _sum/_count), with the tracked min/max as companion gauges — the
   sparse power-of-2^(1/4) buckets have no faithful [le]-label
   encoding, and the quantiles are what the dashboards want anyway. *)

let ok_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let sanitize name =
  let b = Bytes.of_string ("folearn_" ^ name) in
  for i = 0 to Bytes.length b - 1 do
    if not (ok_char (Bytes.get b i)) then Bytes.set b i '_'
  done;
  Bytes.to_string b

let float_str v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.10g" v

let render (snap : Obs.Metric.snapshot) =
  let buf = Buffer.create 4096 in
  let header name ty orig =
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s folearn %s %s\n# TYPE %s %s\n" name ty orig
         name ty)
  in
  List.iter
    (fun (orig, v) ->
      let name = sanitize orig in
      header name "counter" orig;
      Buffer.add_string buf (Printf.sprintf "%s %d\n" name v))
    snap.Obs.Metric.counters;
  List.iter
    (fun (orig, v) ->
      let name = sanitize orig in
      header name "gauge" orig;
      Buffer.add_string buf (Printf.sprintf "%s %s\n" name (float_str v)))
    snap.Obs.Metric.gauges;
  List.iter
    (fun (orig, hs) ->
      let name = sanitize orig in
      header name "summary" orig;
      List.iter
        (fun (q, label) ->
          Buffer.add_string buf
            (Printf.sprintf "%s{quantile=\"%s\"} %s\n" name label
               (float_str (Obs.Metric.quantile hs q))))
        [ (0.5, "0.5"); (0.9, "0.9"); (0.99, "0.99") ];
      Buffer.add_string buf
        (Printf.sprintf "%s_sum %s\n" name
           (float_str hs.Obs.Metric.hs_sum));
      Buffer.add_string buf
        (Printf.sprintf "%s_count %d\n" name hs.Obs.Metric.hs_count);
      List.iter
        (fun (suffix, v) ->
          let gname = name ^ suffix in
          header gname "gauge" (orig ^ suffix);
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" gname (float_str v)))
        [ ("_min", hs.Obs.Metric.hs_min); ("_max", hs.Obs.Metric.hs_max) ])
    snap.Obs.Metric.histograms;
  Buffer.contents buf
