(** Prometheus text exposition (format version 0.0.4) of an
    {!Obs.Metric.snapshot}.

    Metric names are prefixed with [folearn_] and sanitised to the
    Prometheus charset ([.] becomes [_]).  Counters and gauges map
    directly; histograms are exported as summaries — [quantile]
    labels 0.5/0.9/0.99 plus [_sum]/[_count] — with the tracked
    minimum and maximum as companion [_min]/[_max] gauges. *)

val sanitize : string -> string
(** [sanitize "erm.hypotheses_enumerated"] is
    ["folearn_erm_hypotheses_enumerated"]. *)

val render : Obs.Metric.snapshot -> string
(** The full exposition document, one [# HELP]/[# TYPE] pair per
    family. *)
