(* A deliberately tiny HTTP/1.0 responder: one listener domain, one
   connection served at a time, four read-only routes.  Scrapes are a
   few kilobytes and arrive every few seconds, so concurrency would
   buy nothing; what matters is that the accept loop can never take
   the learner down (every per-connection step is fenced) and that
   [stop] is prompt (the loop polls its stop flag via a 0.25 s
   [select] timeout rather than parking in [accept]). *)

let progress_sampler : (unit -> Obs.Json.t) option Atomic.t = Atomic.make None
let set_progress s = Atomic.set progress_sampler s

(* Signal-graceful shutdown: between the operator's SIGTERM and the
   process exit, /healthz answers 503 so an external supervisor can
   tell a drain from a crash.  One atomic flag, safe to set from a
   signal handler. *)
let draining_flag = Atomic.make false
let set_draining b = Atomic.set draining_flag b
let draining () = Atomic.get draining_flag

type t = {
  fd : Unix.file_descr;
  bound : Addr.t;
  stopping : bool Atomic.t;
  mutable dom : unit Domain.t option;
  unix_path : string option;
}

let http_response ?(status = "200 OK") ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let route path =
  let ok (ct, body) = Some ("200 OK", ct, body) in
  match path with
  | "/metrics" ->
      ok
        ( "text/plain; version=0.0.4; charset=utf-8",
          Prom.render (Obs.Metric.snapshot ()) )
  | "/metrics.json" ->
      ok
        ( "application/json",
          Obs.Json.to_string
            (Obs.Metric.snapshot_to_json (Obs.Metric.snapshot ()))
          ^ "\n" )
  | "/healthz" ->
      if draining () then
        Some
          ("503 Service Unavailable", "text/plain; charset=utf-8", "draining\n")
      else ok ("text/plain; charset=utf-8", "ok\n")
  | "/progress" ->
      let j =
        match Atomic.get progress_sampler with
        | None -> Obs.Json.Obj []
        | Some f -> (
            try f ()
            with e ->
              Obs.Json.Obj
                [ ("error", Obs.Json.String (Printexc.to_string e)) ])
      in
      ok ("application/json", Obs.Json.to_string j ^ "\n")
  | _ -> None

(* read until the end of the request head, a hard cap, or EOF *)
let read_request conn =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length buf > 8192 then ()
    else
      let head = Buffer.contents buf in
      let ends_head =
        let rec find i =
          i + 3 < String.length head
          && (String.sub head i 4 = "\r\n\r\n" || find (i + 1))
        in
        String.length head >= 4 && find 0
      in
      if ends_head || String.contains head '\n' then ()
      else
        match Unix.read conn chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            ()
  in
  go ();
  Buffer.contents buf

let parse_request_path head =
  match String.index_opt head '\n' with
  | None -> None
  | Some nl -> (
      let line = String.trim (String.sub head 0 nl) in
      match String.split_on_char ' ' line with
      | meth :: target :: _ when String.uppercase_ascii meth = "GET" ->
          (* strip any query string: the routes take no parameters *)
          Some
            (match String.index_opt target '?' with
            | Some q -> String.sub target 0 q
            | None -> target)
      | _ -> None)

(* A scraper that hangs up mid-response must never take the process
   down: SIGPIPE is ignored process-wide (see [start]), so the write
   surfaces as EPIPE/ECONNRESET here — a clean client disconnect,
   counted and dropped. *)
let disconnects = Obs.Metric.counter "pulse.disconnects"

let write_all conn s =
  let n = String.length s in
  let written = ref 0 in
  try
    while !written < n do
      written := !written + Unix.write_substring conn s !written (n - !written)
    done
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
    Obs.Metric.incr disconnects

let serve_conn conn =
  Fun.protect
    ~finally:(fun () -> try Unix.close conn with _ -> ())
    (fun () ->
      (try Unix.setsockopt_float conn Unix.SO_RCVTIMEO 2.0 with _ -> ());
      (try Unix.setsockopt_float conn Unix.SO_SNDTIMEO 2.0 with _ -> ());
      let head = read_request conn in
      let resp =
        match parse_request_path head with
        | None ->
            http_response ~status:"400 Bad Request"
              ~content_type:"text/plain" "bad request\n"
        | Some path -> (
            match route path with
            | Some (status, content_type, body) ->
                http_response ~status ~content_type body
            | None ->
                http_response ~status:"404 Not Found"
                  ~content_type:"text/plain" "not found\n")
      in
      write_all conn resp)

let rec accept_loop fd stopping =
  if not (Atomic.get stopping) then begin
    (match Unix.select [ fd ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ :: _, _, _ ->
        if not (Atomic.get stopping) then (
          match Unix.accept fd with
          | conn, _ -> ( try serve_conn conn with _ -> ())
          | exception _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception _ -> ());
    accept_loop fd stopping
  end

let start addr =
  (* without this a client closing its socket between our write(2)s
     kills the whole process with SIGPIPE; ignoring it process-wide
     turns the condition into EPIPE, which [write_all] absorbs *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  match Addr.sockaddr addr with
  | Error e -> Error e
  | Ok sa -> (
      let dom_kind =
        match sa with
        | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
        | Unix.ADDR_INET _ -> Unix.PF_INET
      in
      let fd = Unix.socket dom_kind Unix.SOCK_STREAM 0 in
      try
        (match sa with
        | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
        | Unix.ADDR_UNIX p -> ( try Unix.unlink p with _ -> ()));
        Unix.bind fd sa;
        Unix.listen fd 16;
        let bound =
          (* report the kernel-chosen port when asked to bind port 0 *)
          match (addr, Unix.getsockname fd) with
          | Addr.Tcp (h, _), Unix.ADDR_INET (_, port) -> Addr.Tcp (h, port)
          | a, _ -> a
        in
        let t =
          {
            fd;
            bound;
            stopping = Atomic.make false;
            dom = None;
            unix_path =
              (match addr with Addr.Unix_sock p -> Some p | _ -> None);
          }
        in
        t.dom <- Some (Domain.spawn (fun () -> accept_loop fd t.stopping));
        Ok t
      with
      | Unix.Unix_error (err, fn, _) ->
          (try Unix.close fd with _ -> ());
          Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))
      | e ->
          (try Unix.close fd with _ -> ());
          Error (Printexc.to_string e))

let bound_addr t = t.bound

let stop t =
  Atomic.set t.stopping true;
  (match t.dom with
  | Some d ->
      t.dom <- None;
      Domain.join d
  | None -> ());
  (try Unix.close t.fd with _ -> ());
  match t.unix_path with
  | Some p -> ( try Unix.unlink p with _ -> ())
  | None -> ()
