(** The zero-dependency live telemetry exporter: a minimal HTTP/1.0
    responder on a Unix or TCP socket, served from its own domain so a
    scrape never blocks the learner.

    Routes (all [GET], read-only):
    - [/metrics] — Prometheus text exposition ({!Prom.render}) of the
      live {!Obs.Metric.snapshot};
    - [/metrics.json] — the same snapshot in the existing obs JSON
      schema ([Obs.Metric.snapshot_to_json]);
    - [/healthz] — ["ok"], or [503 draining] once {!set_draining} has
      been called (signal-graceful shutdown in progress);
    - [/progress] — the registered {!set_progress} sampler's JSON
      (see {!Progress}), or [{}] when none is installed.

    This was the first networking slice of the folserve daemon: the
    framed request protocol grew on the same listener discipline and
    lives in [lib/serve] ({!Serve.Daemon} binds one of these next to
    its RPC socket for live metrics). *)

type t

val start : Addr.t -> (t, string) result
(** Bind, listen and spawn the serving domain.  TCP sockets set
    [SO_REUSEADDR]; an existing Unix socket path is replaced.  Binding
    TCP port 0 picks an ephemeral port — read it back with
    {!bound_addr}. *)

val bound_addr : t -> Addr.t
(** The actually-bound address (kernel-chosen port resolved). *)

val stop : t -> unit
(** Stop accepting (prompt: the loop polls every 0.25 s), join the
    serving domain, close and unlink the socket. *)

val set_progress : (unit -> Obs.Json.t) option -> unit
(** Install the process-wide [/progress] sampler.  The CLI registers a
    closure over the live run's [Resil.Ctl], Guard budget and
    [Analysis.Plan] envelope; sampler exceptions are reported in-band
    as [{"error": ...}]. *)

val set_draining : bool -> unit
(** Flip the process-wide draining flag (one atomic store —
    async-signal-safe, the CLI's SIGINT/SIGTERM handler calls it).
    While set, [/healthz] answers [503 Service Unavailable] with body
    ["draining"] instead of ["ok"], so an external supervisor
    distinguishes a graceful drain from a crash; every other route
    keeps serving normally until {!stop}. *)

val draining : unit -> bool
(** Read the draining flag back (used by the CLI to hold the exporter
    open for a configurable grace period on shutdown). *)
