(* Crash-safe checkpoint/resume for in-flight learning runs.  See the
   .mli for the contract; implementation notes:

   - The on-disk format is a one-line ASCII header followed by a JSON
     body: "FOLEARNSNAP1 <crc32-hex> <body-length>\n<body>\n".  The CRC
     is the standard IEEE/zlib polynomial over the body bytes, so an
     external harness can validate a snapshot with nothing but
     [zlib.crc32].
   - Durability is temp file + fsync + atomic rename (+ best-effort
     directory fsync): a reader sees either the previous snapshot or
     the new one, never a torn write.
   - [Ctl] keeps the settled-candidate frontier as the largest [n] such
     that every index [< n] has been reported by [chunk_done].  Chunks
     complete out of order under [Par]; intervals beyond the frontier
     park in a sorted pending list until the gap closes, so a resumed
     run never skips an index whose evaluation was lost with the
     crashed process.
   - Cadence rides the [Guard] tick hook: snapshot writes only ever
     trigger from the budgeted tick path, so the no-budget hot path
     gains no branch at all, and a strided countdown keeps the hook
     itself at two atomic operations per tick between cadence checks. *)

let snapshot_writes = Obs.Metric.counter "resil.snapshot_writes"
let snapshot_loads = Obs.Metric.counter "resil.snapshot_loads"

module Crc32 = struct
  (* table-driven IEEE 802.3 / zlib CRC-32 *)
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref (Int32.of_int n) in
           for _ = 0 to 7 do
             c :=
               if Int32.logand !c 1l <> 0l then
                 Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
               else Int32.shift_right_logical !c 1
           done;
           !c))

  let string ?(crc = 0l) s =
    let t = Lazy.force table in
    let c = ref (Int32.logxor crc (-1l)) in
    String.iter
      (fun ch ->
        let i =
          Int32.to_int
            (Int32.logand
               (Int32.logxor !c (Int32.of_int (Char.code ch)))
               0xFFl)
        in
        c := Int32.logxor t.(i) (Int32.shift_right_logical !c 8))
      s;
    Int32.logxor !c (-1l)

  let to_hex c = Printf.sprintf "%08lx" c
end

let atomic_write ?(fsync = true) ~path data =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  (try
     let n = String.length data in
     let written = ref 0 in
     while !written < n do
       written := !written + Unix.write_substring fd data !written (n - !written)
     done;
     if fsync then Unix.fsync fd;
     Unix.close fd
   with e ->
     (try Unix.close fd with _ -> ());
     (try Sys.remove tmp with _ -> ());
     raise e);
  Unix.rename tmp path;
  if fsync then (
    (* make the rename itself durable; failure only weakens durability,
       never atomicity, so it is best-effort *)
    match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
    | dfd ->
        (try Unix.fsync dfd with _ -> ());
        (try Unix.close dfd with _ -> ())
    | exception _ -> ())

module Snapshot = struct
  let schema_version = 1
  let magic = "FOLEARNSNAP1"

  type t = {
    run_id : string;
    solver : string;
    cursor : int;
    best : (int * int) option;
    complete : bool;
    writes : int;
    spent_fuel : int;
    elapsed_ns : int64;
    counters : (string * int) list;
  }

  let to_json s =
    Obs.Json.Obj
      [
        ("schema_version", Obs.Json.Int schema_version);
        ("run_id", Obs.Json.String s.run_id);
        ("solver", Obs.Json.String s.solver);
        ("cursor", Obs.Json.Int s.cursor);
        ( "best",
          match s.best with
          | None -> Obs.Json.Null
          | Some (i, e) ->
              Obs.Json.Obj
                [ ("index", Obs.Json.Int i); ("errors", Obs.Json.Int e) ] );
        ("complete", Obs.Json.Bool s.complete);
        ("writes", Obs.Json.Int s.writes);
        ("spent_fuel", Obs.Json.Int s.spent_fuel);
        ("elapsed_ns", Obs.Json.Int (Int64.to_int s.elapsed_ns));
        ( "counters",
          Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Int v)) s.counters)
        );
      ]

  let of_json j =
    let open Obs.Json in
    let int_field name =
      match Option.bind (member name j) to_int_opt with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing or non-int field %S" name)
    in
    let str_field name =
      match Option.bind (member name j) to_string_opt with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing or non-string field %S" name)
    in
    let ( let* ) = Result.bind in
    let* version = int_field "schema_version" in
    if version <> schema_version then
      Error (Printf.sprintf "unsupported schema_version %d" version)
    else
      let* run_id = str_field "run_id" in
      let* solver = str_field "solver" in
      let* cursor = int_field "cursor" in
      let* best =
        match member "best" j with
        | None | Some Null -> Ok None
        | Some b -> (
            match
              ( Option.bind (member "index" b) to_int_opt,
                Option.bind (member "errors" b) to_int_opt )
            with
            | Some i, Some e -> Ok (Some (i, e))
            | _ -> Error "malformed \"best\" object")
      in
      let* complete =
        match member "complete" j with
        | Some (Bool b) -> Ok b
        | _ -> Error "missing or non-bool field \"complete\""
      in
      let* writes = int_field "writes" in
      let* spent_fuel = int_field "spent_fuel" in
      let* elapsed = int_field "elapsed_ns" in
      let* counters =
        match member "counters" j with
        | Some (Obj kvs) ->
            let rec conv acc = function
              | [] -> Ok (List.rev acc)
              | (k, Int v) :: rest -> conv ((k, v) :: acc) rest
              | (k, _) :: _ ->
                  Error (Printf.sprintf "non-int counter %S" k)
            in
            conv [] kvs
        | _ -> Error "missing or malformed \"counters\" object"
      in
      Ok
        {
          run_id;
          solver;
          cursor;
          best;
          complete;
          writes;
          spent_fuel;
          elapsed_ns = Int64.of_int elapsed;
          counters;
        }

  let encode s =
    let body = Obs.Json.to_string (to_json s) in
    Printf.sprintf "%s %s %d\n%s\n" magic
      (Crc32.to_hex (Crc32.string body))
      (String.length body) body

  let decode data =
    match String.index_opt data '\n' with
    | None -> Error "missing header line"
    | Some nl -> (
        let header = String.sub data 0 nl in
        match String.split_on_char ' ' header with
        | [ m; crc_hex; len_s ] when m = magic -> (
            match
              (int_of_string_opt ("0x" ^ crc_hex), int_of_string_opt len_s)
            with
            | Some crc, Some len ->
                if String.length data < nl + 1 + len then
                  Error "truncated body"
                else
                  let body = String.sub data (nl + 1) len in
                  let actual =
                    Int32.to_int (Crc32.string body) land 0xFFFFFFFF
                  in
                  if actual <> crc land 0xFFFFFFFF then
                    Error
                      (Printf.sprintf "CRC mismatch (header %08x, body %08x)"
                         crc actual)
                  else (
                    match Obs.Json.of_string body with
                    | Error e -> Error ("body is not JSON: " ^ e)
                    | Ok j -> of_json j)
            | _ -> Error "malformed header fields"
            | exception _ -> Error "malformed header fields")
        | m :: _ when m <> magic -> Error (Printf.sprintf "bad magic %S" m)
        | _ -> Error "malformed header line")

  let save ~path s =
    Obs.Span.with_ "resil.snapshot.save"
      ~args:[ ("cursor", string_of_int s.cursor) ]
    @@ fun () ->
    atomic_write ~path (encode s);
    Obs.Metric.incr snapshot_writes;
    Obs.Event.record ~kind:"resil"
      ~args:
        [
          ("path", path);
          ("cursor", string_of_int s.cursor);
          ("writes", string_of_int s.writes);
          ("complete", string_of_bool s.complete);
        ]
      "resil.snapshot.save"

  let load path =
    Obs.Span.with_ "resil.snapshot.load" @@ fun () ->
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error _ -> Error `Not_found
    | data -> (
        match decode data with
        | Ok s ->
            Obs.Metric.incr snapshot_loads;
            Ok s
        | Error e -> Error (`Corrupt e))

  type mismatch = { field : string; expected : string; found : string }

  let pp_mismatch ppf m =
    Format.fprintf ppf "snapshot %s mismatch: expected %s, found %s" m.field
      m.expected m.found

  (* Identity-checked load: resuming a snapshot written for a different
     run or by a different solver would silently replay-skip the wrong
     candidates, so the caller gets the exact field that disagrees
     instead of a generic failure string. *)
  let load_for ~run_id ~solver path =
    match load path with
    | Error (`Not_found | `Corrupt _) as e -> e
    | Ok s ->
        if s.run_id <> run_id then
          Error
            (`Mismatch { field = "run id"; expected = run_id; found = s.run_id })
        else if s.solver <> solver then
          Error
            (`Mismatch { field = "solver"; expected = solver; found = s.solver })
        else Ok s
end

module Ctl = struct
  let default_interval_s = 2.0

  (* strided cadence: the tick hook reads the clock only every
     [cadence_stride] surviving ticks.  The candidate cadence is two
     integer loads and must be checked on every hook call: a solver
     whose per-candidate work ticks rarely (e.g. counting types, which
     bypass the memo-table ticks) may pass fewer total ticks than one
     stride. *)
  let cadence_stride = 64

  type t = {
    active : bool;
    track : bool;  (* maintain the frontier/best, even when not active *)
    run_id : string;
    solver : string;
    path : string option;
    every : int;  (* candidate cadence; [max_int] = time-driven only *)
    interval_ns : int64;
    budget : Guard.Budget.t option;
    counter_names : string list;
    resume_cursor : int;
    resume_best : (int * int) option;
    resumed : bool;
    m : Mutex.t;  (* frontier / pending / best / writes *)
    mutable frontier : int;
    mutable pending : (int * int) list;  (* sorted disjoint [lo, hi) *)
    mutable best : (int * int) option;
    mutable writes : int;
    mutable last_write_frontier : int;
    mutable last_write_ns : int64;
    wm : Mutex.t;  (* serialises snapshot file writes *)
    stride : int Atomic.t;
  }

  let make ~active ?(track = active) ?path ?(every = max_int)
      ?(interval_s = default_interval_s) ?budget ?resume ~run_id ~solver () =
    let counter_names =
      [ "erm.hypotheses_enumerated"; "erm.consistency_checks" ]
    in
    {
      active;
      track;
      run_id;
      solver;
      path;
      every = max 1 every;
      interval_ns = Int64.of_float (Float.max 0.001 interval_s *. 1e9);
      budget;
      counter_names;
      resume_cursor =
        (match resume with Some (s : Snapshot.t) -> s.cursor | None -> 0);
      resume_best = (match resume with Some s -> s.best | None -> None);
      resumed = Option.is_some resume;
      m = Mutex.create ();
      frontier = 0;
      pending = [];
      best = None;
      writes = (match resume with Some s -> s.writes | None -> 0);
      last_write_frontier = 0;
      last_write_ns = Obs.Clock.now_ns ();
      wm = Mutex.create ();
      stride = Atomic.make cadence_stride;
    }

  let none = make ~active:false ~run_id:"" ~solver:"" ()

  let create ?path ?every ?interval_s ?budget ?resume ~run_id ~solver () =
    make ~active:true ?path ?every ?interval_s ?budget ?resume ~run_id ~solver
      ()

  (* A passive frontier tracker for live /progress reporting: it keeps
     the settled frontier and best-so-far that [chunk_done] reports but
     is not "active" — solvers still run their admission prechecks and
     never treat the run as checkpointed/resumable. *)
  let observer ~run_id ~solver () =
    make ~active:false ~track:true ~run_id ~solver ()

  let active t = t.active
  let resumed t = t.resumed
  let resume_cursor t = t.resume_cursor
  let writes t = t.writes
  let frontier t = t.frontier

  let best t =
    Mutex.lock t.m;
    let b = t.best in
    Mutex.unlock t.m;
    b

  let should_eval t i =
    (not t.active)
    || i >= t.resume_cursor
    || (match t.resume_best with Some (b, _) -> i = b | None -> false)

  (* lex-min on (errors, index): monotone under re-reporting, so a
     stale caller view can never regress the recorded best *)
  let merge_best t = function
    | None -> ()
    | Some (i, e) -> (
        match t.best with
        | Some (bi, be) when be < e || (be = e && bi <= i) -> ()
        | _ -> t.best <- Some (i, e))

  let rec absorb t =
    match t.pending with
    | (lo, hi) :: rest when lo <= t.frontier ->
        if hi > t.frontier then t.frontier <- hi;
        t.pending <- rest;
        absorb t
    | _ -> ()

  let rec insert_interval iv = function
    | [] -> [ iv ]
    | (lo, _) :: _ as rest when fst iv <= lo -> iv :: rest
    | head :: rest -> head :: insert_interval iv rest

  let chunk_done t ~lo ~hi ~best =
    if t.track && hi > lo then begin
      Mutex.lock t.m;
      merge_best t best;
      if lo <= t.frontier then begin
        if hi > t.frontier then t.frontier <- hi;
        absorb t
      end
      else t.pending <- insert_interval (lo, hi) t.pending;
      Mutex.unlock t.m
    end

  let assemble t ~complete =
    (* caller holds [t.m] *)
    t.writes <- t.writes + 1;
    let snap =
      {
        Snapshot.run_id = t.run_id;
        solver = t.solver;
        cursor = t.frontier;
        best = t.best;
        complete;
        writes = t.writes;
        spent_fuel =
          (match t.budget with
          | Some b -> (Guard.Budget.spent b).Guard.fuel
          | None -> 0);
        elapsed_ns =
          (match t.budget with
          | Some b -> (Guard.Budget.spent b).Guard.elapsed_ns
          | None -> 0L);
        counters =
          List.map
            (fun n -> (n, Obs.Metric.value (Obs.Metric.counter n)))
            t.counter_names;
      }
    in
    t.last_write_frontier <- t.frontier;
    t.last_write_ns <- Obs.Clock.now_ns ();
    snap

  (* caller holds [t.wm] *)
  let write_locked t ~complete =
    match t.path with
    | None -> ()
    | Some path ->
        Mutex.lock t.m;
        let snap = assemble t ~complete in
        Mutex.unlock t.m;
        Snapshot.save ~path snap

  let candidate_due t =
    t.every < max_int && t.frontier - t.last_write_frontier >= t.every

  let interval_due t =
    Int64.sub (Obs.Clock.now_ns ()) t.last_write_ns >= t.interval_ns

  let tick_hook t () =
    let due =
      candidate_due t
      ||
      if Atomic.fetch_and_add t.stride (-1) <= 0 then begin
        Atomic.set t.stride cadence_stride;
        interval_due t
      end
      else false
    in
    if due && t.path <> None && Mutex.try_lock t.wm then
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.wm)
        (fun () -> try write_locked t ~complete:false with _ -> ())

  let flush ?(complete = false) t =
    if t.active && t.path <> None then begin
      Mutex.lock t.wm;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.wm)
        (fun () -> write_locked t ~complete)
    end

  let with_attached t f =
    if (not t.active) || t.path = None then f ()
    else begin
      Guard.set_tick_hook (Some (tick_hook t));
      Fun.protect ~finally:(fun () -> Guard.set_tick_hook None) f
    end
end
