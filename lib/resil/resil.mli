(** Crash-safe checkpoint/resume for in-flight learning runs.

    The learner's honest constants are towers in [q] — exactly the
    regime where a long ERM enumeration gets killed by the OS or the
    operator.  This module makes such runs {e crash-only}: a durable,
    versioned snapshot of the enumeration state is written on a
    configurable cadence, and a resumed run replays deterministically
    to an output bit-identical to the uninterrupted one.

    {b Snapshot format.}  One ASCII header line followed by a JSON
    body:
    {v FOLEARNSNAP1 <crc32-hex> <body-length>
<body JSON> v}
    The CRC is the standard IEEE/zlib polynomial over the body bytes
    (verifiable externally with [zlib.crc32]).  Writes are atomic:
    temp file, [fsync], [rename], best-effort directory [fsync] — a
    reader sees the previous snapshot or the new one, never a torn
    file.  Loads validate magic, length, CRC and schema version.

    {b Resume model.}  The snapshot stores the {e settled frontier}: a
    cursor [n] such that every candidate index [< n] was fully
    considered, plus the best candidate so far as an
    [(index, error-count)] pair.  A resumed solver re-enumerates the
    whole candidate stream — ticking [Guard] and the obs counters for
    every index, so telemetry and fuel accounting match the
    uninterrupted run — but skips the expensive per-candidate
    evaluation for indices below the cursor, except the recorded best
    index, which is re-evaluated to recover the winning hypothesis.
    First-best/lowest-index tie-breaking makes this sound: every
    skipped candidate compares lex-greater-or-equal to the recorded
    best on [(error, index)].

    {b Cadence.}  Snapshot writes trigger from the [Guard] tick hook,
    i.e. only on the budgeted tick path: an unbudgeted run gains no
    hot-path branch at all. *)

(** IEEE 802.3 / zlib CRC-32 (table-driven). *)
module Crc32 : sig
  val string : ?crc:int32 -> string -> int32
  (** [string s] is the CRC of [s]; pass [?crc] to continue a running
      checksum.  Matches Python's [zlib.crc32]. *)

  val to_hex : int32 -> string
  (** Fixed-width lowercase hex (8 digits). *)
end

val atomic_write : ?fsync:bool -> path:string -> string -> unit
(** [atomic_write ~path data] writes [data] to [path] via a temp file
    in the same directory, [fsync] (default [true]), and an atomic
    [rename].  Concurrent readers of [path] never observe a partial
    file. *)

(** The durable snapshot record and its codec. *)
module Snapshot : sig
  val schema_version : int
  val magic : string

  type t = {
    run_id : string;  (** digest of the run's defining parameters *)
    solver : string;  (** enumerator name: brute/counting/local/nd/... *)
    cursor : int;  (** settled frontier: every index [< cursor] is done *)
    best : (int * int) option;  (** best-so-far [(index, error count)] *)
    complete : bool;  (** the run finished; cursor covers everything *)
    writes : int;  (** snapshot writes so far, carried across resumes *)
    spent_fuel : int;  (** [Guard] fuel spent when written *)
    elapsed_ns : int64;  (** [Guard] budget wall time when written *)
    counters : (string * int) list;  (** obs counters at write time *)
  }

  val encode : t -> string
  val decode : string -> (t, string) result
  (** [decode (encode s) = Ok s]; any corruption of magic, length,
      CRC, JSON shape, or schema version yields [Error]. *)

  val save : path:string -> t -> unit
  (** Atomic durable write ({!atomic_write}); records an obs span
      ["resil.snapshot.save"] and bumps ["resil.snapshot_writes"]. *)

  val load : string -> (t, [ `Not_found | `Corrupt of string ]) result
  (** [`Not_found] when the file does not exist (a fresh run);
      [`Corrupt] carries the decode error. *)

  type mismatch = { field : string; expected : string; found : string }
  (** Which identity field of a loaded snapshot disagreed with the
      caller's run: [field] is ["run id"] or ["solver"]. *)

  val pp_mismatch : Format.formatter -> mismatch -> unit

  val load_for :
    run_id:string ->
    solver:string ->
    string ->
    (t, [ `Not_found | `Corrupt of string | `Mismatch of mismatch ]) result
  (** {!load} plus an identity check: a snapshot whose [run_id] or
      [solver] differs from the caller's yields [`Mismatch] naming the
      disagreeing field with both values — resuming it would silently
      replay-skip the wrong candidates.  Used by the CLI's [--resume]
      and by the fleet coordinator when validating published chunk
      results. *)
end

(** A per-run checkpoint controller, threaded through the [Erm_*]
    enumerators.  The inert value {!none} (the solvers' default) costs
    one boolean test per candidate. *)
module Ctl : sig
  type t

  val none : t
  (** Inert controller: {!should_eval} is always true, {!chunk_done}
      and {!flush} are no-ops. *)

  val create :
    ?path:string ->
    ?every:int ->
    ?interval_s:float ->
    ?budget:Guard.Budget.t ->
    ?resume:Snapshot.t ->
    run_id:string ->
    solver:string ->
    unit ->
    t
  (** An active controller.  [path] is where snapshots go (omitted =
      track the frontier but never write).  Cadence: a snapshot is due
      every [every] settled candidates (default: candidate cadence
      off) {e or} every [interval_s] seconds (default 2.0), whichever
      fires first.  [budget] supplies the [spent] fields.  [resume]
      seeds the skip cursor and best from a loaded snapshot; the
      [writes] count carries over. *)

  val observer : run_id:string -> solver:string -> unit -> t
  (** A passive frontier tracker: {!chunk_done} maintains the settled
      frontier and best-so-far (read by the live [/progress] endpoint
      of [folearn.pulse]), but the controller is {e not} {!active} —
      nothing is ever written, {!should_eval} is always true, and
      solvers still run their admission prechecks. *)

  val active : t -> bool
  val resumed : t -> bool
  val resume_cursor : t -> int

  val best : t -> (int * int) option
  (** Best-so-far [(index, error count)] reported through
      {!chunk_done}, for live progress export. *)

  val should_eval : t -> int -> bool
  (** Must candidate [i] be evaluated (rather than replay-skipped)?
      True for every index at or past the resume cursor, and for the
      resumed best index (re-evaluated to recover the hypothesis). *)

  val chunk_done : t -> lo:int -> hi:int -> best:(int * int) option -> unit
  (** Report indices [\[lo, hi)] settled (evaluated {e or} skipped)
      and the caller's current best as [(index, error count)].
      Out-of-order chunks park until the frontier reaches them. *)

  val frontier : t -> int
  (** The current settled frontier. *)

  val writes : t -> int
  (** Snapshot writes so far (including resumed-from runs). *)

  val flush : ?complete:bool -> t -> unit
  (** Force a snapshot write now (no-op when inert or pathless).  The
      CLI flushes on completion ([~complete:true]), exhaustion, and
      interrupt. *)

  val with_attached : t -> (unit -> 'a) -> 'a
  (** Install this controller's cadence hook ({!Guard.set_tick_hook})
      around the thunk; always uninstalls.  Transparent when inert or
      pathless. *)
end
