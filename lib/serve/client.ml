let rpc ?(timeout_s = 60.0) addr req =
  match Pulse.Addr.sockaddr addr with
  | Error e -> Error e
  | Ok sa -> (
      let dom_kind =
        match sa with
        | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
        | Unix.ADDR_INET _ -> Unix.PF_INET
      in
      let fd = Unix.socket dom_kind Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          match Unix.connect fd sa with
          | exception Unix.Unix_error (err, _, _) ->
              Error
                (Printf.sprintf "connect %s: %s"
                   (Pulse.Addr.to_string addr)
                   (Unix.error_message err))
          | () -> (
              (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s
               with _ -> ());
              match Frame.write fd req with
              | Error e -> Error e
              | Ok () -> (
                  match Frame.read fd with
                  | Ok j -> Ok j
                  | Error `Eof -> Error "server closed the connection"
                  | Error (`Error e) -> Error e))))
