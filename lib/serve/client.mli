(** One-shot RPC client for the resident service: connect, send one
    framed request, read one framed response.  Used by the CLI's
    [call]/[submit]/[poll] subcommands and by the test harnesses. *)

val rpc :
  ?timeout_s:float ->
  Pulse.Addr.t ->
  Obs.Json.t ->
  (Obs.Json.t, string) result
(** [rpc addr req] connects to [addr] (Unix socket or TCP), writes
    [req] as one [FOLEARNRPC1] frame, and reads the response frame.
    [timeout_s] (default 60) bounds the socket receive wait — long
    jobs are submitted and polled, not awaited on one connection. *)
