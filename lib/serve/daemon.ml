module J = Obs.Json

type config = {
  listen : Pulse.Addr.t;
  tenants : Tenant.t;
  queue_cap : int;
  job_dir : string;
  max_conns : int;
  engine_jobs : int;
  metrics_addr : Pulse.Addr.t option;
}

(* -- metrics ------------------------------------------------------- *)

let m_requests = Obs.Metric.counter "serve.requests"
let m_rejected = Obs.Metric.counter "serve.rejected"
let m_overloaded = Obs.Metric.counter "serve.overloaded"
let m_shed = Obs.Metric.counter "serve.shed"
let m_completed = Obs.Metric.counter "serve.completed"
let m_degraded = Obs.Metric.counter "serve.degraded"
let m_exhausted = Obs.Metric.counter "serve.exhausted"
let m_usage = Obs.Metric.counter "serve.usage"
let m_deadline_expired = Obs.Metric.counter "serve.deadline_expired"
let m_jobs_submitted = Obs.Metric.counter "serve.jobs_submitted"
let m_jobs_resumed = Obs.Metric.counter "serve.jobs_resumed"
let m_draining = Obs.Metric.counter "serve.draining_refusals"
let m_conns = Obs.Metric.gauge "serve.connections"

let tenant_requests tenant =
  Obs.Metric.incr
    (Obs.Metric.counter (Printf.sprintf "serve.tenant.%s.requests" tenant))

let count_outcome code =
  Obs.Metric.incr
    (match code with
    | 0 -> m_completed
    | 3 -> m_degraded
    | 4 -> m_exhausted
    | _ -> m_usage)

(* -- drain flag (the only state a signal handler touches) ---------- *)

let drain_requested = Atomic.make false

(* -- cross-thread/domain result cell ------------------------------- *)

type 'a cell = {
  cm : Mutex.t;
  cc : Condition.t;
  mutable cv : 'a option;
}

let cell () = { cm = Mutex.create (); cc = Condition.create (); cv = None }

let fill c v =
  Mutex.lock c.cm;
  if c.cv = None then begin
    c.cv <- Some v;
    Condition.broadcast c.cc
  end;
  Mutex.unlock c.cm

let await c =
  Mutex.lock c.cm;
  while c.cv = None do
    Condition.wait c.cc c.cm
  done;
  let v = Option.get c.cv in
  Mutex.unlock c.cm;
  v

(* -- admission ----------------------------------------------------- *)

let zero_spent =
  {
    Guard.fuel = 0;
    elapsed_ns = 0L;
    table_rows = 0;
    ball_peak = 0;
    catalogue_entries = 0;
  }

(* The clamped budget with its deadline stamped absolute at admission
   time, so queue wait counts against the request. *)
type admitted = {
  a_fuel : int option;
  a_deadline_ns : int64 option;
  a_deadline_s : float option;  (* as clamped, for the planner *)
  a_max_table : int option;
  a_max_ball : int option;
}

let admit_budget tenants (req : Proto.request) =
  let quota = Tenant.quota_for tenants req.tenant in
  let b = Tenant.clamp quota req.budget in
  {
    a_fuel = b.fuel;
    a_deadline_ns =
      Option.map
        (fun s -> Int64.add (Obs.Clock.now_ns ()) (Int64.of_float (s *. 1e9)))
        b.deadline_s;
    a_deadline_s = b.deadline_s;
    a_max_table = b.max_table;
    a_max_ball = b.max_ball;
  }

let plan_limits a =
  {
    Analysis.Plan.fuel = a.a_fuel;
    timeout_s = a.a_deadline_s;
    max_table = a.a_max_table;
    max_ball = a.a_max_ball;
  }

let has_asks a =
  a.a_fuel <> None || a.a_deadline_ns <> None || a.a_max_table <> None
  || a.a_max_ball <> None

let budget_of a =
  if has_asks a then
    Some
      (Guard.Budget.make ?fuel:a.a_fuel ?deadline_ns:a.a_deadline_ns
         ?max_table:a.a_max_table ?max_ball:a.a_max_ball ())
  else None

(* Zero-fuel static precheck: refuse before enqueueing anything. *)
let precheck_response ~op ~params a =
  match Exec.precheck_rejection ~op ~params ~limits:(plan_limits a) with
  | Error msg ->
      Some (Proto.error ~message:msg)
  | Ok (Some r) ->
      Obs.Metric.incr m_rejected;
      Some
        (Proto.rejected ~resource:r.Analysis.Plan.resource ~message:r.message
           ~spent:zero_spent)
  | Ok None -> None

let deadline_expired a =
  match a.a_deadline_ns with
  | Some d -> Obs.Clock.now_ns () > d
  | None -> false

let expired_response () =
  Obs.Metric.incr m_deadline_expired;
  Proto.response ~status:"exhausted" ~code:4
    ~stderr:"folearn serve: deadline expired while queued\n"
    ~spent:zero_spent
    ~extra:
      [
        ( "error",
          J.Obj
            [
              ("reason", J.String "deadline");
              ("message", J.String "deadline expired while queued");
            ] );
      ]
    ()

let response_of_run (r : Exec.run) =
  count_outcome r.code;
  Proto.response ~status:(Proto.status_of_code r.code) ~code:r.code
    ~stdout:r.out ~stderr:r.err ?spent:r.spent ()

(* -- server state -------------------------------------------------- *)

type server = {
  cfg : config;
  queue : Sched.t;
  jobs : Jobs.t;
  seq : int Atomic.t;
}

let next_seq s = Atomic.fetch_and_add s.seq 1

(* -- direct calls (learn/mc/types/game on the engine) -------------- *)

let enqueue_call s (req : Proto.request) a =
  let result = cell () in
  let entry =
    {
      Sched.e_seq = next_seq s;
      e_tenant = req.tenant;
      e_deadline_ns = a.a_deadline_ns;
      e_run =
        (fun () ->
          if deadline_expired a then fill result (expired_response ())
          else
            let r =
              Exec.run_op ?budget:(budget_of a) ~op:req.op ~params:req.params
                ()
            in
            fill result (response_of_run r));
      e_shed =
        (fun () ->
          Obs.Metric.incr m_shed;
          fill result
            (Proto.overloaded ~message:"request shed under queue pressure"));
    }
  in
  match Sched.push s.queue entry with
  | `Queued -> await result
  | `Shed_incoming ->
      Obs.Metric.incr m_overloaded;
      Proto.overloaded ~message:"queue full; request refused"
  | `Closed ->
      Obs.Metric.incr m_draining;
      Proto.draining ()

(* -- jobs (submit/poll) -------------------------------------------- *)

let job_snapshot_extra (j : Jobs.job) =
  match j.j_mismatch with
  | None -> []
  | Some m ->
      [
        ( "snapshot_mismatch",
          J.Obj
            [
              ("field", J.String m.Resil.Snapshot.field);
              ("expected", J.String m.expected);
              ("found", J.String m.found);
              ( "hint",
                J.String
                  "a foreign snapshot squatted on this job's path and was \
                   discarded" );
            ] );
      ]

let job_extra (j : Jobs.job) =
  [
    ( "job",
      J.Obj
        [
          ("id", J.String j.j_id);
          ("status", J.String (Jobs.status_string j.j_status));
        ] );
  ]
  @ job_snapshot_extra j

let run_job s (j : Jobs.job) =
  Jobs.mark_running s.jobs j.j_id;
  let a =
    {
      a_fuel = j.j_fuel;
      a_deadline_ns = None;  (* jobs outlive request deadlines by design *)
      a_deadline_s = None;
      a_max_table = j.j_max_table;
      a_max_ball = j.j_max_ball;
    }
  in
  (* Ctl cadence rides the Guard tick hook, so a checkpointed job
     always runs budgeted — unlimited when the client asked nothing. *)
  let budget =
    match budget_of a with
    | Some b -> b
    | None -> Guard.Budget.unlimited ()
  in
  let resume = Jobs.resume_snapshot s.jobs j in
  let ckpt =
    Resil.Ctl.create
      ~path:(Jobs.snap_path s.jobs j.j_id)
      ~interval_s:0.5 ~budget ?resume ~run_id:j.j_id ~solver:j.j_solver ()
  in
  let r = Exec.run_op ~budget ~ckpt ~op:"learn" ~params:j.j_params () in
  count_outcome r.code;
  let spent =
    match r.spent with None -> J.Null | Some sp -> Guard.spent_to_json sp
  in
  Jobs.mark_done s.jobs j.j_id ~code:r.code ~stdout:r.out ~stderr:r.err ~spent

let enqueue_job s (j : Jobs.job) =
  let entry =
    {
      Sched.e_seq = next_seq s;
      e_tenant = j.j_tenant;
      e_deadline_ns = None;
      e_run = (fun () -> run_job s j);
      e_shed =
        (fun () ->
          Obs.Metric.incr m_shed;
          Jobs.mark_shed s.jobs j.j_id);
    }
  in
  Sched.push s.queue entry

let handle_submit s (req : Proto.request) a =
  match Exec.learn_identity req.params with
  | Error msg -> Proto.error ~message:msg
  | Ok (run_id, solver) -> (
      match
        Jobs.submit s.jobs ~id:run_id ~tenant:req.tenant ~solver
          ~params:req.params ~fuel:a.a_fuel ~max_table:a.a_max_table
          ~max_ball:a.a_max_ball
      with
      | `Existing j ->
          Proto.response ~status:"accepted" ~code:0 ~extra:(job_extra j) ()
      | `New j -> (
          Obs.Metric.incr m_jobs_submitted;
          match enqueue_job s j with
          | `Queued ->
              Proto.response ~status:"accepted" ~code:0 ~extra:(job_extra j) ()
          | `Shed_incoming ->
              Obs.Metric.incr m_overloaded;
              Jobs.mark_shed s.jobs j.j_id;
              Proto.overloaded ~message:"queue full; job shed"
          | `Closed ->
              Obs.Metric.incr m_draining;
              Jobs.mark_shed s.jobs j.j_id;
              Proto.draining ()))

let handle_poll s (req : Proto.request) =
  match Option.bind (J.member "id" req.params) J.to_string_opt with
  | None -> Proto.error ~message:"poll: missing string parameter \"id\""
  | Some id -> (
      match Jobs.get s.jobs id with
      | None ->
          Proto.job_mismatch ~field:"job id" ~expected:id
            ~found:"no such job on this server"
      | Some j -> (
          match j.j_status with
          | Jobs.Done ->
              let spent_extra = [ ("spent", j.j_spent) ] in
              J.Obj
                ([
                   ("schema_version", J.Int Proto.schema_version);
                   ("status", J.String (Proto.status_of_code j.j_code));
                   ("code", J.Int j.j_code);
                   ("stdout", J.String j.j_stdout);
                   ("stderr", J.String j.j_stderr);
                 ]
                @ spent_extra @ job_extra j)
          | Jobs.Shed ->
              Proto.response ~status:"overloaded" ~code:Proto.exit_retry
                ~extra:(job_extra j) ()
          | Jobs.Queued ->
              Proto.response ~status:"queued" ~code:0 ~extra:(job_extra j) ()
          | Jobs.Running ->
              Proto.response ~status:"running" ~code:0 ~extra:(job_extra j) ()))

(* -- request dispatch (runs on a connection thread) ---------------- *)

let handle_request s (req : Proto.request) =
  Obs.Metric.incr m_requests;
  tenant_requests req.tenant;
  match req.op with
  | "ping" ->
      Proto.response ~status:"complete" ~code:0
        ~extra:[ ("pong", J.Bool true) ]
        ()
  | "poll" -> handle_poll s req
  | "learn" | "mc" | "types" | "game" | "submit" -> (
      if Atomic.get drain_requested then begin
        Obs.Metric.incr m_draining;
        Proto.draining ()
      end
      else
        let a = admit_budget s.cfg.tenants req in
        match precheck_response ~op:req.op ~params:req.params a with
        | Some resp -> resp
        | None ->
            if req.op = "submit" then handle_submit s req a
            else enqueue_call s req a)
  | op -> Proto.error ~message:(Printf.sprintf "unknown op %S" op)

(* -- connection loop ----------------------------------------------- *)

let active_conns = Atomic.make 0

let handle_conn s fd =
  Atomic.incr active_conns;
  Obs.Metric.set m_conns (float_of_int (Atomic.get active_conns));
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr active_conns;
      Obs.Metric.set m_conns (float_of_int (Atomic.get active_conns));
      try Unix.close fd with _ -> ())
    (fun () ->
      let rec loop () =
        match Frame.read fd with
        | Error `Eof -> ()
        | Error (`Error msg) ->
            (* best effort: the peer may already be gone *)
            ignore (Frame.write fd (Proto.error ~message:msg))
        | Ok j -> (
            let resp =
              match Proto.request_of_json j with
              | Error msg -> Proto.error ~message:msg
              | Ok req -> (
                  try handle_request s req
                  with e ->
                    Proto.error
                      ~message:
                        (Printf.sprintf "internal error: %s"
                           (Printexc.to_string e)))
            in
            match Frame.write fd resp with Ok () -> loop () | Error _ -> ())
      in
      loop ())

(* -- listener ------------------------------------------------------ *)

let bind_listener addr =
  match Pulse.Addr.sockaddr addr with
  | Error e -> Error e
  | Ok sa -> (
      let dom_kind =
        match sa with
        | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
        | Unix.ADDR_INET _ -> Unix.PF_INET
      in
      let fd = Unix.socket dom_kind Unix.SOCK_STREAM 0 in
      (match sa with
      | Unix.ADDR_UNIX path -> ( try Unix.unlink path with _ -> ())
      | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
      match Unix.bind fd sa with
      | exception Unix.Unix_error (err, _, _) ->
          (try Unix.close fd with _ -> ());
          Error
            (Printf.sprintf "bind %s: %s"
               (Pulse.Addr.to_string addr)
               (Unix.error_message err))
      | () ->
          Unix.listen fd 64;
          let bound =
            match Unix.getsockname fd with
            | Unix.ADDR_INET (host, port) ->
                Pulse.Addr.Tcp (Unix.string_of_inet_addr host, port)
            | Unix.ADDR_UNIX path -> Pulse.Addr.Unix_sock path
          in
          Ok (fd, bound))

let accept_loop s listener =
  let rec loop () =
    if Atomic.get drain_requested then ()
    else begin
      (match Unix.select [ listener ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept listener with
          | exception Unix.Unix_error _ -> ()
          | fd, _ ->
              if Atomic.get active_conns >= s.cfg.max_conns then begin
                Obs.Metric.incr m_overloaded;
                ignore
                  (Frame.write fd
                     (Proto.overloaded ~message:"connection limit reached"));
                try Unix.close fd with _ -> ()
              end
              else ignore (Thread.create (fun () -> handle_conn s fd) ()))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* -- drain --------------------------------------------------------- *)

let wait_conns_drained ~grace_s =
  let deadline = Unix.gettimeofday () +. grace_s in
  while Atomic.get active_conns > 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.05
  done

let drain_grace () =
  match Sys.getenv_opt "FOLEARN_DRAIN_GRACE" with
  | Some v -> ( match float_of_string_opt v with Some f -> f | None -> 0.0)
  | None -> 0.0

(* -- entry point --------------------------------------------------- *)

let run cfg =
  Obs.enable ();
  Obs.Metric.prewarm ();
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Atomic.set drain_requested false;
  (* the handler only stores atomics: no locks at signal time *)
  let on_signal _ =
    Atomic.set drain_requested true;
    Pulse.Server.set_draining true
  in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
   with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
   with Invalid_argument _ -> ());
  Par.set_jobs cfg.engine_jobs;
  ignore (Par.default ());
  let pulse =
    match cfg.metrics_addr with
    | None -> None
    | Some addr -> (
        match Pulse.Server.start addr with
        | Ok t -> Some t
        | Error e ->
            Printf.eprintf "folearn serve: metrics exporter: %s\n%!" e;
            None)
  in
  match bind_listener cfg.listen with
  | Error e ->
      Option.iter Pulse.Server.stop pulse;
      Error e
  | Ok (listener, bound) ->
      let s =
        {
          cfg;
          queue = Sched.create ~cap:cfg.queue_cap;
          jobs = Jobs.load ~dir:cfg.job_dir;
          seq = Atomic.make 0;
        }
      in
      (* re-enqueue work a previous incarnation left unfinished *)
      List.iter
        (fun j ->
          Obs.Metric.incr m_jobs_resumed;
          ignore (enqueue_job s j))
        (Jobs.pending s.jobs);
      let engine =
        Domain.spawn (fun () ->
            let rec loop () =
              match Sched.pop s.queue with
              | None -> ()
              | Some e ->
                  (try e.Sched.e_run () with _ -> ());
                  loop ()
            in
            loop ())
      in
      Printf.printf "folearn serve: listening on %s (queue cap %d)\n%!"
        (Pulse.Addr.to_string bound) cfg.queue_cap;
      accept_loop s listener;
      (* drain: stop accepting, finish everything admitted, exit 0 *)
      (try Unix.close listener with _ -> ());
      (match cfg.listen with
      | Pulse.Addr.Unix_sock path -> ( try Unix.unlink path with _ -> ())
      | _ -> ());
      Sched.close s.queue;
      Domain.join engine;
      wait_conns_drained ~grace_s:2.0;
      let grace = drain_grace () in
      if grace > 0.0 then Thread.delay grace;
      Option.iter Pulse.Server.stop pulse;
      Printf.printf "folearn serve: drained, exiting\n%!";
      Ok 0
