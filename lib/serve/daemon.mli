(** folserve: the resident multi-tenant learning service daemon.

    One process, three tiers:
    - {e connection threads} (capped) frame-decode requests and run
      admission: tenant quota clamp, absolute-deadline stamping, and
      the zero-fuel [Analysis.Plan] precheck — an over-budget request
      is refused ([rejected], reason [would_exhaust]) before a single
      unit of fuel is spent;
    - a {e bounded queue} ({!Sched}) between admission and execution —
      a full queue sheds the earliest-deadline request ([overloaded],
      retryable);
    - one {e engine domain} executes requests serially against the
      warm process state (interned types, compiled evaluators, the
      default [Par] pool), which is where the resident service beats
      the one-shot CLI.

    Long jobs ([submit]/[poll]) persist to a {!Jobs} table and
    checkpoint via [Resil]; a SIGKILLed server resumes them on
    restart.  SIGTERM drains: stop accepting, answer [draining],
    finish everything already admitted, flip [/healthz] to
    [503 draining], exit 0. *)

type config = {
  listen : Pulse.Addr.t;
  tenants : Tenant.t;
  queue_cap : int;
  job_dir : string;
  max_conns : int;
  engine_jobs : int;  (** engine [Par] pool width *)
  metrics_addr : Pulse.Addr.t option;
}

val run : config -> (int, string) result
(** Bind, resume pending jobs, serve until SIGTERM/SIGINT, drain.
    [Ok 0] on a clean drain; [Error _] when the listener cannot be
    set up.  Installs SIGTERM/SIGINT/SIGPIPE handlers and enables
    [Obs] metrics process-wide. *)
