(* The CLI's solo op bodies, retargeted at buffers.  Print statements
   are kept textually in lockstep with bin/folearn_cli.ml — the
   serve-chaos harness compares a served learn's stdout byte-for-byte
   against the one-shot CLI's, at jobs 1 and 4. *)

open Cgraph
module J = Obs.Json

(* ------------------------------------------------------------------ *)
(* graph / colour spec parsing (moved here from the CLI)               *)
(* ------------------------------------------------------------------ *)

let parse_graph_spec spec =
  let fail msg = Error (`Msg msg) in
  match String.split_on_char ':' spec with
  | "file" :: rest -> (
      let path = String.concat ":" rest in
      try Ok (Io.load path) with
      | Io.Format_error m -> fail (Printf.sprintf "%s: %s" path m)
      | Sys_error m -> fail m)
  | [ "path"; n ] -> Ok (Gen.path (int_of_string n))
  | [ "cycle"; n ] -> Ok (Gen.cycle (int_of_string n))
  | [ "clique"; n ] -> Ok (Gen.clique (int_of_string n))
  | [ "star"; n ] -> Ok (Gen.star (int_of_string n))
  | [ "cbt"; d ] -> Ok (Gen.complete_binary_tree (int_of_string d))
  | [ "grid"; wh ] -> (
      match String.split_on_char 'x' wh with
      | [ w; h ] -> Ok (Gen.grid (int_of_string w) (int_of_string h))
      | _ -> fail "grid spec must be grid:WxH")
  | [ "tree"; n ] -> Ok (Gen.random_tree ~seed:42 (int_of_string n))
  | [ "tree"; n; seed ] ->
      Ok (Gen.random_tree ~seed:(int_of_string seed) (int_of_string n))
  | [ "deg"; n; d ] ->
      Ok
        (Gen.random_bounded_degree ~seed:42 ~n:(int_of_string n)
           ~d:(int_of_string d))
  | [ "deg"; n; d; seed ] ->
      Ok
        (Gen.random_bounded_degree ~seed:(int_of_string seed)
           ~n:(int_of_string n) ~d:(int_of_string d))
  | [ "gnp"; n; p ] ->
      Ok (Gen.gnp ~seed:42 ~n:(int_of_string n) ~p:(float_of_string p))
  | [ "gnp"; n; p; seed ] ->
      Ok
        (Gen.gnp ~seed:(int_of_string seed) ~n:(int_of_string n)
           ~p:(float_of_string p))
  | _ -> fail (Printf.sprintf "unknown graph spec %S (see --help)" spec)

let parse_color s =
  match String.index_opt s '=' with
  | None -> Error (`Msg "colour must be NAME=v1,v2,...")
  | Some i -> (
      let name = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match
        if rest = "" then []
        else List.map int_of_string (String.split_on_char ',' rest)
      with
      | members -> Ok (name, members)
      | exception _ -> Error (`Msg "bad colour spec"))

(* ------------------------------------------------------------------ *)
(* parameter objects                                                   *)
(* ------------------------------------------------------------------ *)

(* a usage error: the already-formatted stderr line(s), exit code 2 *)
exception Usage of string

let usage fmt = Format.kasprintf (fun m -> raise (Usage m)) fmt

let p_str name j = Option.bind (J.member name j) J.to_string_opt

let p_req_str ~op name j =
  match p_str name j with
  | Some s -> s
  | None -> usage "folearn %s: missing required parameter %S" op name

let p_int ~default name j =
  Option.value ~default (Option.bind (J.member name j) J.to_int_opt)

let p_float ~default name j =
  Option.value ~default (Option.bind (J.member name j) J.to_float_opt)

let p_bool ~default name j =
  match J.member name j with Some (J.Bool b) -> b | _ -> default

let p_colors ~op j =
  match J.member "colors" j with
  | None | Some J.Null -> []
  | Some (J.List l) ->
      List.map
        (fun c ->
          match Option.bind (J.to_string_opt c) (fun s ->
                    Result.to_option (parse_color s)) with
          | Some kv -> kv
          | None -> usage "folearn %s: bad colour spec" op)
        l
  | Some _ -> usage "folearn %s: \"colors\" must be a list of strings" op

let p_graph ~op j =
  let spec = p_req_str ~op "graph" j in
  match parse_graph_spec spec with
  | Ok g -> Graph.with_colors g (p_colors ~op j)
  | Error (`Msg m) -> usage "folearn %s: --graph: %s" op m
  | exception _ -> usage "folearn %s: bad graph spec %S" op spec

let parse_formula ~cmd ~flag s =
  match Fo.Parser.parse_result s with
  | Ok f -> f
  | Error e -> usage "folearn %s: %s: %a" cmd flag Fo.Parser.pp_error e

let run_id_of parts = Digest.to_hex (Digest.string (String.concat "\n" parts))

(* -- learn --------------------------------------------------------- *)

type learn_p = {
  lp_g : Graph.t;
  lp_target : Fo.Formula.t;
  lp_k : int;
  lp_ell : int;
  lp_q : int;
  lp_solver : [ `Brute | `Nd | `Counting | `Local ];
  lp_tmax : int;
  lp_noise : float;
  lp_m : int;
  lp_seed : int;
}

let learn_params j =
  let target = p_req_str ~op:"learn" "target" j in
  let solver =
    match Option.value ~default:"brute" (p_str "solver" j) with
    | "brute" -> `Brute
    | "nd" -> `Nd
    | "counting" -> `Counting
    | "local" -> `Local
    | s -> usage "folearn learn: unknown solver %S" s
  in
  {
    lp_g = p_graph ~op:"learn" j;
    lp_target = parse_formula ~cmd:"learn" ~flag:"--target" target;
    lp_k = p_int ~default:1 "k" j;
    lp_ell = p_int ~default:0 "ell" j;
    lp_q = p_int ~default:1 "q" j;
    lp_solver = solver;
    lp_tmax = p_int ~default:2 "tmax" j;
    lp_noise = p_float ~default:0.0 "noise" j;
    lp_m = p_int ~default:0 "m" j;
    lp_seed = p_int ~default:1 "seed" j;
  }

let solver_name = function
  | `Brute -> "brute"
  | `Nd -> "nd"
  | `Counting -> "counting"
  | `Local -> "local"

let learn_run_id p =
  run_id_of
    [
      "learn"; Io.to_string p.lp_g;
      Format.asprintf "%a" Fo.Formula.pp p.lp_target;
      string_of_int p.lp_k; string_of_int p.lp_ell; string_of_int p.lp_q;
      solver_name p.lp_solver;
      string_of_int p.lp_tmax; string_of_float p.lp_noise;
      string_of_int p.lp_m; string_of_int p.lp_seed;
    ]

(* parse/validate the target, fix the run identity, label the training
   sequence — the CLI's [learn_prep], verbatim semantics *)
let learn_prep p =
  let module Sam = Folearn.Sample in
  let xvars = Folearn.Hypothesis.xvars p.lp_k in
  (match
     Analysis.Diagnostic.errors
       (Analysis.Fo_check.check
          ~vocab:(Analysis.Vocab.of_graph p.lp_g)
          ~allowed_free:xvars p.lp_target)
   with
  | [] -> ()
  | errs ->
      usage
        "folearn learn: the target must be a query over x1..x%d in the \
         graph's vocabulary:@.%s"
        p.lp_k
        (Analysis.Diagnostic.render_list errs));
  let tuples =
    if p.lp_m = 0 then Sam.all_tuples p.lp_g ~k:p.lp_k
    else Sam.random_tuples ~seed:p.lp_seed p.lp_g ~k:p.lp_k ~m:p.lp_m
  in
  let lam =
    Sam.label_with_query p.lp_g ~formula:p.lp_target ~xvars tuples
    |> fun l ->
    if p.lp_noise > 0.0 then Sam.flip_noise ~seed:p.lp_seed ~p:p.lp_noise l
    else l
  in
  (learn_run_id p, tuples, lam)

let learn_identity j =
  match
    let p = learn_params j in
    (learn_run_id p, solver_name p.lp_solver)
  with
  | v -> Ok v
  | exception Usage m -> Error m

(* ------------------------------------------------------------------ *)
(* execution                                                           *)
(* ------------------------------------------------------------------ *)

type run = {
  code : int;
  out : string;
  err : string;
  spent : Guard.spent option;
}

let exit_degraded = 3
let exit_exhausted = 4

let report_exhausted ~err ~cmd ~reason ~checkpoint ~(spent : Guard.spent) =
  let what =
    match reason with
    | Guard.Interrupted -> "interrupted"
    | r -> "budget exhausted: " ^ Guard.reason_to_string r
  in
  Format.fprintf err
    "folearn %s: %s at %s (fuel %d, %.3f s, table %d, ball %d)@." cmd what
    (Guard.checkpoint_to_string checkpoint)
    spent.Guard.fuel
    (Int64.to_float spent.Guard.elapsed_ns /. 1e9)
    spent.Guard.table_rows spent.Guard.ball_peak;
  Pulse.Fdr.dump_now
    ~reason:
      (match reason with
      | Guard.Interrupted -> "interrupted"
      | r -> "guard.exhausted:" ^ Guard.reason_to_string r)

let exhausted_exit reason ~salvaged =
  if reason = Guard.Interrupted || salvaged then exit_degraded
  else exit_exhausted

let run_learn ~out ~err ?budget ~ckpt ~precheck params =
  let p = learn_params params in
  let g = p.lp_g and k = p.lp_k and ell = p.lp_ell and q = p.lp_q in
  let tmax = p.lp_tmax in
  let _run_id, _tuples, lam = learn_prep p in
  let module Sam = Folearn.Sample in
  Format.fprintf out "training sequence: %d examples (%d positive)@."
    (Sam.size lam)
    (List.length (Sam.positives lam));
  let conclude outcome print =
    match outcome with
    | Guard.Complete r ->
        Resil.Ctl.flush ~complete:true ckpt;
        print r;
        0
    | Guard.Exhausted { best_so_far = Some r; reason; checkpoint; spent } ->
        Resil.Ctl.flush ckpt;
        report_exhausted ~err ~cmd:"learn" ~reason ~checkpoint ~spent;
        Format.fprintf out
          "best-so-far hypothesis (no optimality certificate):@.";
        print r;
        exhausted_exit reason ~salvaged:true
    | Guard.Exhausted { best_so_far = None; reason; checkpoint; spent } ->
        Resil.Ctl.flush ckpt;
        report_exhausted ~err ~cmd:"learn" ~reason ~checkpoint ~spent;
        Format.fprintf err "folearn learn: no hypothesis salvaged@.";
        exhausted_exit reason ~salvaged:false
  in
  match p.lp_solver with
  | `Brute ->
      conclude
        (Folearn.Erm_brute.solve_budgeted ?budget ~precheck ~ckpt g ~k ~ell ~q
           lam)
        (fun (r : Folearn.Erm_brute.result) ->
          Format.fprintf out
            "solver: Prop 11 exact ERM (tried %d parameter tuples)@."
            r.Folearn.Erm_brute.params_tried;
          Format.fprintf out "training error: %.4f@." r.Folearn.Erm_brute.err;
          Format.fprintf out "%a@." Folearn.Hypothesis.pp
            r.Folearn.Erm_brute.hypothesis)
  | `Nd ->
      let cls = Splitter.Nowhere_dense.of_graph "cli" g in
      let cfg =
        Folearn.Erm_nd.default_config ~radius:1 ~k ~ell_star:(max 1 ell)
          ~q_star:q cls
      in
      conclude
        (Folearn.Erm_nd.solve_budgeted ?budget ~precheck ~ckpt cfg g lam)
        (fun (rep : Folearn.Erm_nd.report) ->
          Format.fprintf out
            "solver: Theorem 13 (rounds %d, branches %d, ell used %d, rank \
             %d)@."
            (List.length rep.Folearn.Erm_nd.rounds)
            rep.Folearn.Erm_nd.branches_explored rep.Folearn.Erm_nd.ell_used
            rep.Folearn.Erm_nd.q_used;
          Format.fprintf out "training error: %.4f@." rep.Folearn.Erm_nd.err;
          Format.fprintf out "parameters: %a@." Graph.Tuple.pp
            (Folearn.Hypothesis.params rep.Folearn.Erm_nd.hypothesis))
  | `Counting ->
      conclude
        (Folearn.Erm_counting.solve_budgeted ?budget ~precheck ~ckpt g ~k ~ell
           ~q ~tmax lam)
        (fun (r : Folearn.Erm_counting.result) ->
          Format.fprintf out
            "solver: exact counting ERM (FOC, thresholds <= %d; tried %d \
             parameter tuples)@."
            tmax r.Folearn.Erm_counting.params_tried;
          Format.fprintf out "training error: %.4f@."
            r.Folearn.Erm_counting.err;
          Format.fprintf out "%a@." Folearn.Hypothesis.pp
            r.Folearn.Erm_counting.hypothesis)
  | `Local -> (
      match budget with
      | None ->
          let r = Folearn.Erm_local.solve g ~k ~ell ~q lam in
          Format.fprintf out
            "solver: sublinear local learner (pool %d, touched %d of %d \
             vertices)@."
            r.Folearn.Erm_local.pool_size r.Folearn.Erm_local.vertices_touched
            (Graph.order g);
          Format.fprintf out "training error: %.4f@." r.Folearn.Erm_local.err;
          Format.fprintf out "parameters: %a@." Graph.Tuple.pp
            (Folearn.Hypothesis.params r.Folearn.Erm_local.hypothesis);
          0
      | Some _ when Resil.Ctl.active ckpt ->
          (* a checkpointed (job) local run must resume bit-identically,
             so it bypasses the degradation chain — same rule as the
             CLI's --checkpoint path *)
          conclude
            (Folearn.Erm_local.solve_budgeted ?budget ~precheck ~ckpt g ~k
               ~ell ~q lam)
            (fun (r : Folearn.Erm_local.result) ->
              Format.fprintf out
                "solver: sublinear local learner (pool %d, touched %d of %d \
                 vertices)@."
                r.Folearn.Erm_local.pool_size
                r.Folearn.Erm_local.vertices_touched (Graph.order g);
              Format.fprintf out "training error: %.4f@."
                r.Folearn.Erm_local.err;
              Format.fprintf out "parameters: %a@." Graph.Tuple.pp
                (Folearn.Hypothesis.params r.Folearn.Erm_local.hypothesis))
      | Some _ -> (
          let print (l : Folearn.Degrade.learned) =
            List.iter
              (fun (a : Folearn.Degrade.attempt) ->
                Format.fprintf err
                  "folearn learn: stage %s at rank %d exhausted (%s at %s)@."
                  a.Folearn.Degrade.solver a.Folearn.Degrade.q
                  (Guard.reason_to_string a.Folearn.Degrade.reason)
                  (Guard.checkpoint_to_string a.Folearn.Degrade.checkpoint))
              l.Folearn.Degrade.attempts;
            Format.fprintf out "solver: %s ERM at rank %d%s@."
              (match l.Folearn.Degrade.solver with
              | "local" -> "sublinear local"
              | s -> "fallback " ^ s)
              l.Folearn.Degrade.q_used
              (if l.Folearn.Degrade.degraded then " (degraded)" else "");
            Format.fprintf out "training error: %.4f@." l.Folearn.Degrade.err;
            Format.fprintf out "parameters: %a@." Graph.Tuple.pp
              (Folearn.Hypothesis.params l.Folearn.Degrade.hypothesis)
          in
          match Folearn.Degrade.learn ?budget ~precheck g ~k ~ell ~q lam with
          | Guard.Complete l ->
              print l;
              if l.Folearn.Degrade.degraded then exit_degraded else 0
          | Guard.Exhausted { best_so_far = Some l; reason; checkpoint; spent }
            ->
              report_exhausted ~err ~cmd:"learn" ~reason ~checkpoint ~spent;
              Format.fprintf out
                "best-so-far hypothesis (no optimality certificate):@.";
              print l;
              exhausted_exit reason ~salvaged:true
          | Guard.Exhausted { best_so_far = None; reason; checkpoint; spent }
            ->
              report_exhausted ~err ~cmd:"learn" ~reason ~checkpoint ~spent;
              Format.fprintf err "folearn learn: no hypothesis salvaged@.";
              exhausted_exit reason ~salvaged:false))

(* -- mc ------------------------------------------------------------ *)

let run_mc ~out ~err ?budget ~ckpt ~precheck params =
  let g = p_graph ~op:"mc" params in
  let phi =
    parse_formula ~cmd:"mc" ~flag:"--formula"
      (p_req_str ~op:"mc" "formula" params)
  in
  let via_erm = p_bool ~default:false "via_erm" params in
  (match Fo.Formula.free_vars phi with
  | [] -> ()
  | fv ->
      usage "folearn mc: --formula must be a sentence; free variable%s: %s"
        (if List.length fv > 1 then "s" else "")
        (String.concat ", " fv));
  let outcome =
    Resil.Ctl.with_attached ckpt @@ fun () ->
    if via_erm then
      Guard.outcome_map
        (fun (verdict, stats) ->
          fun () ->
           Format.fprintf out "%b@." verdict;
           Format.fprintf out
             "(oracle calls: %d, recursion nodes: %d, representative sets: \
              [%s])@."
             stats.Folearn.Reduction.oracle_calls
             stats.Folearn.Reduction.recursion_nodes
             (String.concat "; "
                (List.map string_of_int
                   stats.Folearn.Reduction.representative_sets)))
        (Folearn.Reduction.model_check_budgeted ?budget ~precheck
           ~oracle:Folearn.Reduction.exact_oracle g phi)
    else
      Guard.run ?budget
        ~salvage:(fun () -> None)
        (fun () ->
          let verdict = Modelcheck.Eval.sentence g phi in
          fun () -> Format.fprintf out "%b@." verdict)
  in
  match outcome with
  | Guard.Complete print ->
      Resil.Ctl.flush ~complete:true ckpt;
      print ();
      0
  | Guard.Exhausted { reason; checkpoint; spent; _ } ->
      Resil.Ctl.flush ckpt;
      report_exhausted ~err ~cmd:"mc" ~reason ~checkpoint ~spent;
      exhausted_exit reason ~salvaged:false

(* -- types --------------------------------------------------------- *)

let run_types ~out ~err ?budget ~ckpt params =
  let g = p_graph ~op:"types" params in
  let q = p_int ~default:1 "q" params in
  let k = p_int ~default:1 "k" params in
  let hintikka = p_bool ~default:false "hintikka" params in
  let outcome =
    Resil.Ctl.with_attached ckpt @@ fun () ->
    Guard.run ?budget
      ~salvage:(fun () -> None)
      (fun () ->
        let ctx = Modelcheck.Types.make_ctx g in
        Modelcheck.Types.partition_by_tp ctx ~q
          (Graph.Tuple.all ~n:(Graph.order g) ~k))
  in
  match outcome with
  | Guard.Complete classes ->
      Resil.Ctl.flush ~complete:true ckpt;
      Format.fprintf out
        "%d distinct tp_%d classes of %d-tuples on %d vertices@."
        (List.length classes) q k (Graph.order g);
      List.iteri
        (fun i (ty, members) ->
          Format.fprintf out "class %d (%a): %d tuples, e.g. %a@." i
            Modelcheck.Types.pp ty (List.length members) Graph.Tuple.pp
            (List.hd members);
          if hintikka then
            Format.fprintf out "  %a@." Fo.Formula.pp
              (Modelcheck.Hintikka.of_type ~colors:(Graph.color_names g) ty))
        classes;
      0
  | Guard.Exhausted { reason; checkpoint; spent; _ } ->
      Resil.Ctl.flush ckpt;
      report_exhausted ~err ~cmd:"types" ~reason ~checkpoint ~spent;
      exhausted_exit reason ~salvaged:false

(* -- game ---------------------------------------------------------- *)

let run_game ~out ~err ?budget ~ckpt params =
  let g = p_graph ~op:"game" params in
  let r = p_int ~default:2 "r" params in
  let outcome =
    Resil.Ctl.with_attached ckpt @@ fun () ->
    Guard.run ?budget
      ~salvage:(fun () -> None)
      (fun () ->
        Splitter.Game.trace g ~r
          ~connector:(Splitter.Strategy.connector_max_ball ~r)
          ~splitter:Splitter.Strategy.best_heuristic)
  in
  match outcome with
  | Guard.Complete tr ->
      Resil.Ctl.flush ~complete:true ckpt;
      List.iteri
        (fun i (v, w, remaining) ->
          Format.fprintf out
            "round %d: Connector -> %d, Splitter -> %d, arena %d vertices@."
            (i + 1) v w remaining)
        tr;
      (match List.rev tr with
      | (_, _, 0) :: _ ->
          Format.fprintf out "Splitter wins in %d rounds@." (List.length tr)
      | _ -> Format.fprintf out "no win within the round cap@.");
      0
  | Guard.Exhausted { reason; checkpoint; spent; _ } ->
      Resil.Ctl.flush ckpt;
      report_exhausted ~err ~cmd:"game" ~reason ~checkpoint ~spent;
      exhausted_exit reason ~salvaged:false

(* ------------------------------------------------------------------ *)
(* entry points                                                        *)
(* ------------------------------------------------------------------ *)

let run_op ?budget ?(ckpt = Resil.Ctl.none) ?(precheck = true) ~op ~params ()
    =
  let ob = Buffer.create 512 and eb = Buffer.create 256 in
  let out = Format.formatter_of_buffer ob in
  let err = Format.formatter_of_buffer eb in
  let code =
    try
      match op with
      | "learn" -> run_learn ~out ~err ?budget ~ckpt ~precheck params
      | "mc" -> run_mc ~out ~err ?budget ~ckpt ~precheck params
      | "types" -> run_types ~out ~err ?budget ~ckpt params
      | "game" -> run_game ~out ~err ?budget ~ckpt params
      | _ -> usage "folearn serve: unknown op %S" op
    with
    | Usage msg ->
        Format.fprintf err "%s@." msg;
        2
    | e ->
        Format.fprintf err "folearn serve: %s op failed: %s@." op
          (Printexc.to_string e);
        2
  in
  Format.pp_print_flush out ();
  Format.pp_print_flush err ();
  {
    code;
    out = Buffer.contents ob;
    err = Buffer.contents eb;
    spent = Option.map Guard.Budget.spent budget;
  }

let precheck_rejection ~op ~params ~limits =
  let module Plan = Analysis.Plan in
  match
    match op with
    | "learn" | "submit" ->
        let p = learn_params params in
        let module Sam = Folearn.Sample in
        let tuples =
          if p.lp_m = 0 then Sam.all_tuples p.lp_g ~k:p.lp_k
          else Sam.random_tuples ~seed:p.lp_seed p.lp_g ~k:p.lp_k ~m:p.lp_m
        in
        let inp =
          Plan.input ~tmax:p.lp_tmax p.lp_g ~k:p.lp_k ~ell:p.lp_ell ~q:p.lp_q
            tuples
        in
        (match p.lp_solver with
        | `Local ->
            (* the budgeted local path runs the degradation chain, so
               admission must reject only when every stage is doomed —
               same rule as [Folearn.Admission.degrade] *)
            Plan.precheck_chain ~what:"Degrade" (Plan.degrade_stages inp)
              limits
        | (`Brute | `Nd | `Counting) as s ->
            let what, ps =
              match s with
              | `Brute -> ("Erm_brute", Plan.Brute)
              | `Nd -> ("Erm_nd", Plan.Nd)
              | `Counting -> ("Erm_counting", Plan.Counting)
            in
            Plan.precheck ~what (Plan.analyze inp ps) limits)
    | "mc" ->
        if p_bool ~default:false "via_erm" params then
          let g = p_graph ~op:"mc" params in
          let phi =
            parse_formula ~cmd:"mc" ~flag:"--formula"
              (p_req_str ~op:"mc" "formula" params)
          in
          Plan.precheck_model_check ~what:"Reduction" ~n:(Graph.order g) phi
            limits
        else None
    | _ -> None
  with
  | Some _ as rej ->
      (* same ledger the in-process admission layer keeps *)
      Obs.Metric.incr (Obs.Metric.counter "plan.precheck_rejections");
      Ok rej
  | None -> Ok None
  | exception Usage m -> Error m
