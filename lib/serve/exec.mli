(** Op execution for the resident service.

    Each op replays the one-shot CLI's solo code path — same solver
    entry points, same print statements, same exit-code taxonomy — but
    writes to in-memory buffers instead of the process streams, so a
    response's [stdout] is byte-identical to the corresponding
    [folearn_cli] invocation (the chaos harness asserts this).

    Ops and their parameter objects (all members optional unless
    noted):
    - [learn]: [graph] (spec string, required), [colors] (list of
      [NAME=v,v] strings), [target] (required), [k], [ell], [q],
      [solver] (brute|nd|counting|local), [tmax], [noise], [m], [seed]
    - [mc]: [graph] (required), [colors], [formula] (required),
      [via_erm] (bool)
    - [types]: [graph] (required), [colors], [q], [k], [hintikka]
    - [game]: [graph] (required), [colors], [r] *)

val parse_graph_spec : string -> (Cgraph.Graph.t, [ `Msg of string ]) result
(** The CLI's graph-spec DSL ([path:N], [grid:WxH], [gnp:N:P:SEED],
    [file:PATH], ...); shared so server and CLI accept exactly the
    same specs. *)

val parse_color : string -> (string * int list, [ `Msg of string ]) result

type run = {
  code : int;  (** 0 complete / 2 usage / 3 degraded / 4 exhausted *)
  out : string;  (** captured stdout, byte-identical to the CLI's *)
  err : string;  (** captured stderr (timing fields will differ) *)
  spent : Guard.spent option;
}

val run_op :
  ?budget:Guard.Budget.t ->
  ?ckpt:Resil.Ctl.t ->
  ?precheck:bool ->
  op:string ->
  params:Obs.Json.t ->
  unit ->
  run
(** Execute one op.  Must be called from at most one domain at a time
    (the engine): solvers share the default [Par] pool and the ambient
    [Guard] budget, both of which support a single driver. *)

val learn_identity :
  Obs.Json.t -> (string * string, string) result
(** [(run_id, solver_name)] of a learn parameter object — the same
    digest the CLI computes, without labelling the sample.  Used to
    key server-side jobs and their snapshots. *)

val precheck_rejection :
  op:string ->
  params:Obs.Json.t ->
  limits:Analysis.Plan.limits ->
  (Analysis.Plan.rejection option, string) result
(** Zero-fuel static admission: would this op, under these limits,
    provably exhaust before settling a first answer?  [Error] when the
    parameters are unusable (the request will fail as [usage] anyway).
    Ops without a planner model ([types], [game]) always admit. *)
