(* See the .mli for the wire format.  The header line is capped too
   (magic + 8 hex digits + a 20-digit length is well under 64 bytes),
   so a peer streaming garbage without a newline cannot grow a buffer
   unboundedly. *)

let magic = "FOLEARNRPC1"
let default_max_len = 8 * 1024 * 1024
let max_header = 64

let encode j =
  let body = Obs.Json.to_string j in
  Printf.sprintf "%s %s %d\n%s\n" magic
    (Resil.Crc32.to_hex (Resil.Crc32.string body))
    (String.length body) body

let parse_header header =
  match String.split_on_char ' ' header with
  | [ m; crc_hex; len_s ] when m = magic -> (
      match (int_of_string_opt ("0x" ^ crc_hex), int_of_string_opt len_s) with
      | Some crc, Some len when len >= 0 -> Ok (crc, len)
      | _ -> Error "malformed header fields"
      | exception _ -> Error "malformed header fields")
  | m :: _ when m <> magic -> Error (Printf.sprintf "bad magic %S" m)
  | _ -> Error "malformed header line"

let check_body ~crc body =
  let actual = Int32.to_int (Resil.Crc32.string body) land 0xFFFFFFFF in
  if actual <> crc land 0xFFFFFFFF then
    Error (Printf.sprintf "CRC mismatch (header %08x, body %08x)" crc actual)
  else
    match Obs.Json.of_string body with
    | Error e -> Error ("body is not JSON: " ^ e)
    | Ok j -> Ok j

let decode ?(max_len = default_max_len) data =
  match String.index_opt data '\n' with
  | None -> Error "missing header line"
  | Some nl -> (
      match parse_header (String.sub data 0 nl) with
      | Error e -> Error e
      | Ok (crc, len) ->
          if len > max_len then
            Error (Printf.sprintf "frame too large (%d > %d)" len max_len)
          else if String.length data < nl + 1 + len + 1 then
            Error "truncated body"
          else if data.[nl + 1 + len] <> '\n' then
            Error "missing frame terminator"
          else check_body ~crc (String.sub data (nl + 1) len))

(* -- socket IO ----------------------------------------------------- *)

let read_byte fd =
  let b = Bytes.create 1 in
  match Unix.read fd b 0 1 with
  | 0 -> None
  | _ -> Some (Bytes.get b 0)
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> None

let read ?(max_len = default_max_len) fd =
  (* byte-at-a-time for the short header only; the body is read in one
     gulp once the announced length passed the cap *)
  let header = Buffer.create 32 in
  let rec read_header () =
    if Buffer.length header > max_header then
      Error (`Error "header line too long")
    else
      match read_byte fd with
      | None ->
          if Buffer.length header = 0 then Error `Eof
          else Error (`Error "EOF inside header")
      | Some '\n' -> Ok (Buffer.contents header)
      | Some c ->
          Buffer.add_char header c;
          read_header ()
  in
  match read_header () with
  | Error _ as e -> e
  | Ok line -> (
      match parse_header line with
      | Error e -> Error (`Error e)
      | Ok (crc, len) ->
          if len > max_len then
            Error
              (`Error (Printf.sprintf "frame too large (%d > %d)" len max_len))
          else (
            (* body + trailing newline *)
            let want = len + 1 in
            let buf = Bytes.create want in
            let got = ref 0 in
            let short = ref false in
            (try
               while (not !short) && !got < want do
                 match Unix.read fd buf !got (want - !got) with
                 | 0 -> short := true
                 | n -> got := !got + n
               done
             with Unix.Unix_error (Unix.ECONNRESET, _, _) -> short := true);
            if !short then Error (`Error "EOF inside body")
            else
              match check_body ~crc (Bytes.sub_string buf 0 len) with
              | Ok j -> Ok j
              | Error e -> Error (`Error e)))

let write fd j =
  let s = encode j in
  let n = String.length s in
  let written = ref 0 in
  try
    while !written < n do
      written := !written + Unix.write_substring fd s !written (n - !written)
    done;
    Ok ()
  with
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      Error "peer disconnected"
  | Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
