(** Length-framed, CRC'd JSON frames for the folserve RPC socket.

    One frame is one ASCII header line followed by the body and a
    trailing newline:
    {v FOLEARNRPC1 <crc32-hex> <body-length>
<body JSON>
v}
    The CRC is the standard IEEE/zlib polynomial over the body bytes
    (verifiable externally with [zlib.crc32]) — the same discipline as
    the [Resil] snapshots and the fleet lease files, so a harness can
    validate any durable or on-wire artefact of this codebase with one
    checksum routine.

    Both sides enforce a frame cap: a peer announcing a body longer
    than [max_len] is cut off before any allocation, so a corrupt or
    malicious length field cannot balloon the daemon. *)

val magic : string

val default_max_len : int
(** 8 MiB: comfortably above any hypothesis or stats payload. *)

val encode : Obs.Json.t -> string
(** The full frame bytes for a JSON body. *)

val decode : ?max_len:int -> string -> (Obs.Json.t, string) result
(** Validate magic, header shape, length, cap and CRC, then parse the
    body.  [decode ?max_len (encode j) = Ok j] whenever
    [String.length (Obs.Json.to_string j) <= max_len]. *)

val read : ?max_len:int -> Unix.file_descr -> (Obs.Json.t, [ `Eof | `Error of string ]) result
(** Read exactly one frame from a socket.  [`Eof] when the peer closed
    before the first header byte (a clean disconnect); [`Error] on a
    malformed or oversized frame, a mid-frame EOF, or a socket error. *)

val write : Unix.file_descr -> Obs.Json.t -> (unit, string) result
(** Write one frame; EPIPE/ECONNRESET surface as [Error] (the peer
    hung up), never as an exception. *)
