module J = Obs.Json

type status = Queued | Running | Done | Shed

type job = {
  j_id : string;
  j_tenant : string;
  j_solver : string;
  j_params : J.t;
  j_fuel : int option;
  j_max_table : int option;
  j_max_ball : int option;
  j_status : status;
  j_code : int;
  j_stdout : string;
  j_stderr : string;
  j_spent : J.t;
  j_mismatch : Resil.Snapshot.mismatch option;
}

type t = {
  dir : string;
  mu : Mutex.t;
  tbl : (string, job) Hashtbl.t;
}

let status_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Shed -> "shed"

let status_of_string = function
  | "running" -> Running  (* re-loaded as pending work on restart *)
  | "done" -> Done
  | "shed" -> Shed
  | _ -> Queued

let json_of_job j =
  let opt_int = function Some n -> J.Int n | None -> J.Null in
  let base =
    [
      ("id", J.String j.j_id);
      ("tenant", J.String j.j_tenant);
      ("solver", J.String j.j_solver);
      ("params", j.j_params);
      ("fuel", opt_int j.j_fuel);
      ("max_table", opt_int j.j_max_table);
      ("max_ball", opt_int j.j_max_ball);
      ("status", J.String (status_string j.j_status));
      ("code", J.Int j.j_code);
      ("stdout", J.String j.j_stdout);
      ("stderr", J.String j.j_stderr);
      ("spent", j.j_spent);
    ]
  in
  let mm =
    match j.j_mismatch with
    | None -> []
    | Some m ->
        [
          ( "mismatch",
            J.Obj
              [
                ("field", J.String m.Resil.Snapshot.field);
                ("expected", J.String m.expected);
                ("found", J.String m.found);
              ] );
        ]
  in
  J.Obj (base @ mm)

let job_of_json j =
  let str k = Option.bind (J.member k j) J.to_string_opt in
  let int k = Option.bind (J.member k j) J.to_int_opt in
  match str "id" with
  | None -> None
  | Some id ->
      let mismatch =
        match J.member "mismatch" j with
        | Some m -> (
            match (Option.bind (J.member "field" m) J.to_string_opt,
                   Option.bind (J.member "expected" m) J.to_string_opt,
                   Option.bind (J.member "found" m) J.to_string_opt)
            with
            | Some field, Some expected, Some found ->
                Some { Resil.Snapshot.field; expected; found }
            | _ -> None)
        | None -> None
      in
      Some
        {
          j_id = id;
          j_tenant = Option.value (str "tenant") ~default:"anon";
          j_solver = Option.value (str "solver") ~default:"brute";
          j_params = Option.value (J.member "params" j) ~default:(J.Obj []);
          j_fuel = int "fuel";
          j_max_table = int "max_table";
          j_max_ball = int "max_ball";
          j_status =
            status_of_string (Option.value (str "status") ~default:"queued");
          j_code = Option.value (int "code") ~default:0;
          j_stdout = Option.value (str "stdout") ~default:"";
          j_stderr = Option.value (str "stderr") ~default:"";
          j_spent = Option.value (J.member "spent" j) ~default:J.Null;
          j_mismatch = mismatch;
        }

let table_path t = Filename.concat t.dir "jobs.json"
let snap_path t id = Filename.concat t.dir (Printf.sprintf "job-%s.snap" id)

(* call with the lock held *)
let persist t =
  let jobs = Hashtbl.fold (fun _ j acc -> j :: acc) t.tbl [] in
  let jobs = List.sort (fun a b -> compare a.j_id b.j_id) jobs in
  let doc =
    J.Obj [ ("schema_version", J.Int 1);
            ("jobs", J.List (List.map json_of_job jobs)) ]
  in
  Resil.atomic_write ~path:(table_path t) (J.to_string doc ^ "\n")

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let load ~dir =
  mkdir_p dir;
  let t = { dir; mu = Mutex.create (); tbl = Hashtbl.create 16 } in
  (match
     if Sys.file_exists (table_path t) then
       let ic = open_in_bin (table_path t) in
       let n = in_channel_length ic in
       let s = really_input_string ic n in
       close_in ic;
       J.of_string s |> Result.to_option
     else None
   with
  | Some doc -> (
      match Option.bind (J.member "jobs" doc) J.to_list_opt with
      | Some l ->
          List.iter
            (fun j ->
              match job_of_json j with
              | Some job -> Hashtbl.replace t.tbl job.j_id job
              | None -> ())
            l
      | None -> ())
  | None -> ());
  t

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let submit t ~id ~tenant ~solver ~params ~fuel ~max_table ~max_ball =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl id with
      | Some j -> `Existing j
      | None ->
          let j =
            {
              j_id = id;
              j_tenant = tenant;
              j_solver = solver;
              j_params = params;
              j_fuel = fuel;
              j_max_table = max_table;
              j_max_ball = max_ball;
              j_status = Queued;
              j_code = 0;
              j_stdout = "";
              j_stderr = "";
              j_spent = J.Null;
              j_mismatch = None;
            }
          in
          Hashtbl.replace t.tbl id j;
          persist t;
          `New j)

let get t id = locked t (fun () -> Hashtbl.find_opt t.tbl id)

let pending t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ j acc ->
          match j.j_status with Queued | Running -> j :: acc | _ -> acc)
        t.tbl []
      |> List.sort (fun a b -> compare a.j_id b.j_id))

let update t id f =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl id with
      | None -> ()
      | Some j ->
          Hashtbl.replace t.tbl id (f j);
          persist t)

let mark_running t id = update t id (fun j -> { j with j_status = Running })
let mark_shed t id = update t id (fun j -> { j with j_status = Shed })

let mark_done t id ~code ~stdout ~stderr ~spent =
  update t id (fun j ->
      {
        j with
        j_status = Done;
        j_code = code;
        j_stdout = stdout;
        j_stderr = stderr;
        j_spent = spent;
      })

let mark_mismatch t id m = update t id (fun j -> { j with j_mismatch = Some m })

let resume_snapshot t job =
  match
    Resil.Snapshot.load_for ~run_id:job.j_id ~solver:job.j_solver
      (snap_path t job.j_id)
  with
  | Ok s -> Some s
  | Error `Not_found -> None
  | Error (`Corrupt _) -> None
  | Error (`Mismatch m) ->
      mark_mismatch t job.j_id m;
      None
