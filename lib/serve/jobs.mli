(** Durable server-side job table.

    A submitted learn runs as a resumable job: its entry is persisted
    to [jobs.json] (atomic temp-file + rename, like every durable
    artefact here) on every state transition, and the run itself
    checkpoints to [job-<id>.snap] on the [Resil] cadence.  A server
    SIGKILLed mid-job finds the entry still [queued]/[running] on
    restart, re-enqueues it, and resumes from the snapshot — replaying
    to output bit-identical to an uninterrupted run, with no work lost
    and none duplicated (settled candidates are replay-skipped).

    Job ids are the run's deterministic digest ([Exec.learn_identity]),
    so re-submitting the same work is idempotent and a poll for a
    foreign or stale id is detected as a structured mismatch rather
    than answered with the wrong run's result. *)

type status = Queued | Running | Done | Shed

type job = {
  j_id : string;
  j_tenant : string;
  j_solver : string;
  j_params : Obs.Json.t;
  j_fuel : int option;
  j_max_table : int option;
  j_max_ball : int option;
  j_status : status;
  j_code : int;  (** meaningful when [Done] *)
  j_stdout : string;
  j_stderr : string;
  j_spent : Obs.Json.t;
  j_mismatch : Resil.Snapshot.mismatch option;
      (** a foreign snapshot squats on this job's path *)
}

type t

val load : dir:string -> t
(** Create [dir] if needed and load [jobs.json] (missing or corrupt =
    empty table). *)

val submit :
  t ->
  id:string ->
  tenant:string ->
  solver:string ->
  params:Obs.Json.t ->
  fuel:int option ->
  max_table:int option ->
  max_ball:int option ->
  [ `New of job | `Existing of job ]

val get : t -> string -> job option
val pending : t -> job list
(** [Queued]/[Running] entries, for restart re-enqueue. *)

val mark_running : t -> string -> unit
val mark_shed : t -> string -> unit
val mark_done :
  t -> string -> code:int -> stdout:string -> stderr:string ->
  spent:Obs.Json.t -> unit
val mark_mismatch : t -> string -> Resil.Snapshot.mismatch -> unit

val snap_path : t -> string -> string

val resume_snapshot : t -> job -> Resil.Snapshot.t option
(** Load the job's snapshot for resume; [None] for a fresh start
    (missing or corrupt snapshot).  A [`Mismatch] marks the job (see
    {!mark_mismatch}) and resumes fresh under the job's own id, which
    atomically replaces the squatter on the next cadence write. *)

val status_string : status -> string
