module J = Obs.Json

let schema_version = 1

type budget_req = {
  fuel : int option;
  deadline_s : float option;
  max_table : int option;
  max_ball : int option;
}

let no_budget = { fuel = None; deadline_s = None; max_table = None; max_ball = None }

type request = {
  tenant : string;
  op : string;
  budget : budget_req;
  params : J.t;
}

let opt_int = function None -> J.Null | Some v -> J.Int v
let opt_float = function None -> J.Null | Some v -> J.Float v

let request_to_json r =
  J.Obj
    [
      ("schema_version", J.Int schema_version);
      ("op", J.String r.op);
      ("tenant", J.String r.tenant);
      ("fuel", opt_int r.budget.fuel);
      ("deadline_s", opt_float r.budget.deadline_s);
      ("max_table", opt_int r.budget.max_table);
      ("max_ball", opt_int r.budget.max_ball);
      ("params", r.params);
    ]

let request_of_json j =
  let mem name = J.member name j in
  match Option.bind (mem "schema_version") J.to_int_opt with
  | None -> Error "missing or non-int field \"schema_version\""
  | Some v when v <> schema_version ->
      Error (Printf.sprintf "unsupported schema_version %d" v)
  | Some _ -> (
      match Option.bind (mem "op") J.to_string_opt with
      | None -> Error "missing or non-string field \"op\""
      | Some op ->
          let tenant =
            Option.value ~default:"anon"
              (Option.bind (mem "tenant") J.to_string_opt)
          in
          let budget =
            {
              fuel = Option.bind (mem "fuel") J.to_int_opt;
              deadline_s = Option.bind (mem "deadline_s") J.to_float_opt;
              max_table = Option.bind (mem "max_table") J.to_int_opt;
              max_ball = Option.bind (mem "max_ball") J.to_int_opt;
            }
          in
          let params = Option.value ~default:(J.Obj []) (mem "params") in
          Ok { tenant; op; budget; params })

(* -- statuses ------------------------------------------------------ *)

let exit_retry = 75

let status_of_code = function
  | 0 -> "complete"
  | 3 -> "degraded"
  | 4 -> "exhausted"
  | _ -> "usage"

let code_of_status = function
  | "complete" | "accepted" | "queued" | "running" -> 0
  | "degraded" -> 3
  | "exhausted" | "rejected" -> 4
  | "overloaded" | "draining" -> exit_retry
  | _ -> 2

let response ?(stdout = "") ?(stderr = "") ?spent ?(extra = []) ~status ~code
    () =
  J.Obj
    ([
       ("schema_version", J.Int schema_version);
       ("status", J.String status);
       ("code", J.Int code);
       ("stdout", J.String stdout);
       ("stderr", J.String stderr);
       ( "spent",
         match spent with None -> J.Null | Some s -> Guard.spent_to_json s );
     ]
    @ extra)

let rejected ~resource ~message ~spent =
  response ~status:"rejected" ~code:4 ~spent
    ~stderr:(Printf.sprintf "folearn serve: %s\n" message)
    ~extra:
      [
        ( "error",
          J.Obj
            [
              ("reason", J.String "would_exhaust");
              ("resource", J.String resource);
              ("message", J.String message);
            ] );
      ]
    ()

let overloaded ~message =
  response ~status:"overloaded" ~code:exit_retry
    ~extra:[ ("error", J.Obj [ ("reason", J.String "overloaded");
                               ("message", J.String message) ]) ]
    ()

let draining () =
  response ~status:"draining" ~code:exit_retry
    ~extra:
      [
        ( "error",
          J.Obj
            [
              ("reason", J.String "draining");
              ("message", J.String "server is draining; retry elsewhere");
            ] );
      ]
    ()

let error ~message =
  response ~status:"error" ~code:2
    ~extra:[ ("error", J.Obj [ ("reason", J.String "error");
                               ("message", J.String message) ]) ]
    ()

let job_mismatch ~field ~expected ~found =
  response ~status:"job_mismatch" ~code:2
    ~extra:
      [
        ( "error",
          J.Obj
            [
              ("reason", J.String "job_mismatch");
              ("field", J.String field);
              ("expected", J.String expected);
              ("found", J.String found);
              ( "hint",
                J.String
                  "that job belongs to another invocation; submit afresh to \
                   start over" );
            ] );
      ]
    ()

(* -- client-side accessors ----------------------------------------- *)

let str_field name j =
  Option.value ~default:"" (Option.bind (J.member name j) J.to_string_opt)

let resp_status = str_field "status"
let resp_stdout = str_field "stdout"
let resp_stderr = str_field "stderr"

let resp_code j =
  Option.value ~default:2 (Option.bind (J.member "code" j) J.to_int_opt)
