(** Request/response documents carried in {!Frame} frames.

    A request names an operation, a tenant, an optional per-request
    budget, and an op-specific parameter object.  A response carries a
    status string derived from the CLI's exit-code taxonomy plus the
    run's captured stdout/stderr and resource spend, so a thin client
    can reproduce the one-shot CLI behaviour exactly: print [stdout],
    print [stderr] to stderr, exit with [code]. *)

val schema_version : int

(** The client's resource asks, before tenant clamping. *)
type budget_req = {
  fuel : int option;
  deadline_s : float option;  (** relative; stamped absolute at admission *)
  max_table : int option;
  max_ball : int option;
}

val no_budget : budget_req

type request = {
  tenant : string;  (** "anon" when omitted *)
  op : string;  (** learn | mc | types | game | submit | poll | ping *)
  budget : budget_req;
  params : Obs.Json.t;  (** op-specific object, see {!Exec} *)
}

val request_to_json : request -> Obs.Json.t
val request_of_json : Obs.Json.t -> (request, string) result

(** {1 Statuses}

    [complete]/[degraded]/[exhausted]/[usage] mirror CLI exits
    0/3/4/2.  The service adds: [rejected] (admission precheck:
    the budget would exhaust before a first answer), [overloaded]
    (queue full, request shed), [draining] (SIGTERM received, no new
    work), [accepted]/[running]/[queued] (job lifecycle),
    [job_mismatch] (stale or foreign job id on poll), [error]
    (protocol or internal failure). *)

val status_of_code : int -> string
(** 0 -> complete, 3 -> degraded, 4 -> exhausted, _ -> usage. *)

val code_of_status : string -> int
(** Client-side exit code for a status; retryable conditions
    ([overloaded], [draining]) map to {!exit_retry}. *)

val exit_retry : int
(** 75 (EX_TEMPFAIL): the request was refused without being attempted
    and may be retried after backoff. *)

(** {1 Response builders} *)

val response :
  ?stdout:string ->
  ?stderr:string ->
  ?spent:Guard.spent ->
  ?extra:(string * Obs.Json.t) list ->
  status:string ->
  code:int ->
  unit ->
  Obs.Json.t

val rejected :
  resource:string -> message:string -> spent:Guard.spent -> Obs.Json.t
(** A [rejected] response with [error.reason = "would_exhaust"] and
    the planner's resource/message; code 4, zero spend. *)

val overloaded : message:string -> Obs.Json.t
val draining : unit -> Obs.Json.t
val error : message:string -> Obs.Json.t

val job_mismatch :
  field:string -> expected:string -> found:string -> Obs.Json.t
(** Structured mismatch mirroring [Resil.Snapshot.pp_mismatch], plus
    the CLI hint telling the caller to submit afresh. *)

(** {1 Response accessors (client side)} *)

val resp_status : Obs.Json.t -> string
val resp_code : Obs.Json.t -> int
val resp_stdout : Obs.Json.t -> string
val resp_stderr : Obs.Json.t -> string
