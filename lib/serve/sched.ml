type entry = {
  e_seq : int;
  e_tenant : string;
  e_deadline_ns : int64 option;
  e_run : unit -> unit;
  e_shed : unit -> unit;
}

type t = {
  cap : int;
  mutable q : entry list;  (* arrival order, head = oldest *)
  mutable closed : bool;
  mu : Mutex.t;
  cond : Condition.t;
  depth_gauge : Obs.Metric.gauge;
}

let create ~cap =
  {
    cap = max 1 cap;
    q = [];
    closed = false;
    mu = Mutex.create ();
    cond = Condition.create ();
    depth_gauge = Obs.Metric.gauge "serve.queue_depth";
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let set_depth t = Obs.Metric.set t.depth_gauge (float_of_int (List.length t.q))

(* shedding rank: earliest deadline first; deadline-less entries last,
   oldest (lowest seq) first among them *)
let shed_rank e =
  match e.e_deadline_ns with
  | Some d -> (0, d, e.e_seq)
  | None -> (1, 0L, e.e_seq)

let push t e =
  let action =
    locked t (fun () ->
        if t.closed then `Closed
        else if List.length t.q < t.cap then begin
          t.q <- t.q @ [ e ];
          set_depth t;
          Condition.signal t.cond;
          `Queued
        end
        else
          (* full: shed whichever of (queued ∪ {incoming}) ranks first *)
          let victim =
            List.fold_left
              (fun acc c -> if shed_rank c < shed_rank acc then c else acc)
              e t.q
          in
          if victim.e_seq = e.e_seq then `Shed_incoming
          else begin
            t.q <-
              List.filter (fun c -> c.e_seq <> victim.e_seq) t.q @ [ e ];
            set_depth t;
            Condition.signal t.cond;
            `Shed_queued victim
          end)
  in
  match action with
  | `Shed_queued victim ->
      (* outside the lock: the callback writes to a socket *)
      (try victim.e_shed () with _ -> ());
      `Queued
  | (`Closed | `Queued | `Shed_incoming) as r -> r

let pop t =
  locked t (fun () ->
      let rec wait () =
        match t.q with
        | e :: rest ->
            t.q <- rest;
            set_depth t;
            Some e
        | [] ->
            if t.closed then None
            else begin
              Condition.wait t.cond t.mu;
              wait ()
            end
      in
      wait ())

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.cond)

let depth t = locked t (fun () -> List.length t.q)
