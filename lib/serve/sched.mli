(** Bounded admission queue between the connection threads and the
    single engine domain.

    The queue never grows past its cap: pushing onto a full queue
    sheds one request — the entry with the earliest deadline (the one
    most likely to miss anyway; entries without a deadline rank last,
    oldest first among them).  The victim can be the incoming request
    itself.  Shed entries get their [e_shed] callback (the connection
    thread answers [overloaded]); the engine never sees them. *)

type entry = {
  e_seq : int;
  e_tenant : string;
  e_deadline_ns : int64 option;  (** absolute, obs monotonic clock *)
  e_run : unit -> unit;  (** executed serially by the engine *)
  e_shed : unit -> unit;  (** called (outside the lock) when evicted *)
}

type t

val create : cap:int -> t

val push : t -> entry -> [ `Queued | `Shed_incoming | `Closed ]
(** [`Shed_incoming]: the queue was full and the incoming entry ranked
    first for shedding.  When instead a queued victim is evicted, its
    [e_shed] runs and the push still returns [`Queued].  [`Closed]
    after {!close} (the server is draining). *)

val pop : t -> entry option
(** Block until an entry is available (FIFO order).  [None] once the
    queue is closed {e and} drained — accepted work always completes. *)

val close : t -> unit
(** Stop accepting pushes and wake every popper.  Must not be called
    from a signal handler (takes the queue lock). *)

val depth : t -> int
