type quota = {
  t_fuel : int option;
  t_deadline_s : float option;
  t_max_table : int option;
  t_max_ball : int option;
}

let unrestricted =
  { t_fuel = None; t_deadline_s = None; t_max_table = None; t_max_ball = None }

type t = (string * quota) list

let parse spec =
  match String.index_opt spec ':' with
  | None -> Error "tenant quota must be NAME:fuel=N,deadline=S,table=N,ball=N"
  | Some i -> (
      let name = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      if name = "" then Error "empty tenant name"
      else
        let parts =
          if rest = "" then [] else String.split_on_char ',' rest
        in
        let rec go q = function
          | [] -> Ok (name, q)
          | part :: tl -> (
              match String.index_opt part '=' with
              | None -> Error (Printf.sprintf "bad quota term %S" part)
              | Some j -> (
                  let key = String.sub part 0 j in
                  let v = String.sub part (j + 1) (String.length part - j - 1) in
                  let int_v () =
                    match int_of_string_opt v with
                    | Some n when n >= 0 -> Ok n
                    | _ -> Error (Printf.sprintf "bad quota value %S" part)
                  in
                  let ( let* ) = Result.bind in
                  match key with
                  | "fuel" ->
                      let* n = int_v () in
                      go { q with t_fuel = Some n } tl
                  | "deadline" -> (
                      match float_of_string_opt v with
                      | Some s when s >= 0.0 ->
                          go { q with t_deadline_s = Some s } tl
                      | _ -> Error (Printf.sprintf "bad quota value %S" part))
                  | "table" ->
                      let* n = int_v () in
                      go { q with t_max_table = Some n } tl
                  | "ball" ->
                      let* n = int_v () in
                      go { q with t_max_ball = Some n } tl
                  | _ -> Error (Printf.sprintf "unknown quota key %S" key)))
        in
        go unrestricted parts)

let make entries = entries

let quota_for t name =
  match List.assoc_opt name t with
  | Some q -> q
  | None -> Option.value ~default:unrestricted (List.assoc_opt "*" t)

let min_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (min a b)

let clamp q (b : Proto.budget_req) =
  {
    Proto.fuel = min_opt b.Proto.fuel q.t_fuel;
    deadline_s = min_opt b.Proto.deadline_s q.t_deadline_s;
    max_table = min_opt b.Proto.max_table q.t_max_table;
    max_ball = min_opt b.Proto.max_ball q.t_max_ball;
  }
