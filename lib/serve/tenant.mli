(** Per-tenant admission quotas.

    The operator declares quotas with repeatable
    [--tenant NAME:fuel=N,deadline=S,table=N,ball=N] flags (every
    component optional).  A request's declared budget is clamped to
    its tenant's quota — the effective limit for each resource is the
    smaller of what the client asked for and what the tenant is
    allowed — and the clamped budget is what admission prechecks and
    [Guard] enforce.  The name [*] declares a default quota applied to
    tenants with no entry of their own; with no [*] entry, unlisted
    tenants are unrestricted. *)

type quota = {
  t_fuel : int option;
  t_deadline_s : float option;  (** wall-clock allowance per request *)
  t_max_table : int option;
  t_max_ball : int option;
}

val unrestricted : quota

type t

val parse : string -> (string * quota, string) result
(** Parse one [--tenant] flag value. *)

val make : (string * quota) list -> t
val quota_for : t -> string -> quota

val clamp : quota -> Proto.budget_req -> Proto.budget_req
(** Component-wise minimum of the client's asks and the quota. *)
