#!/usr/bin/env python3
"""Validate the schema of BENCH_*.json telemetry files.

Usage: check_bench_json.py BENCH_e1.json [BENCH_micro.json ...]

Every file must be valid JSON carrying the v1 telemetry schema written
by bench/main.ml: the headline keys, a row list, and a metrics snapshot
with the three sections.  Exits non-zero naming the first problem.
"""
import json
import sys

HEADLINE = {
    "experiment": str,
    "schema_version": int,
    "jobs": int,
    "wall_time_s": (int, float),
    "model_check_calls": int,
    "hypotheses_enumerated": int,
    "resumed": bool,
    "checkpoint_writes": int,
    "events_recorded": int,
    "rows": list,
    "metrics": dict,
}
METRIC_SECTIONS = ("counters", "gauges", "histograms")

# experiment-specific headline keys (spliced in by bench/main.ml's
# bench_extra_headline): e20 reports its fleet counters at the top
# level so this gate can require them
EXTRA_HEADLINE = {
    "e20": {
        "workers": int,
        "leases_expired": int,
        "chunks_quarantined": int,
    },
    # e21 reports the hot-path engine's health: how many evaluations hit
    # the compile cache, how often intern shards caught up with the
    # global table, and the erm_brute speedup at 4 jobs (gated in CI
    # only when the runner actually has >= 4 cores)
    "e21": {
        "cores": int,
        "compile_hits": int,
        "intern_shard_merges": int,
        "speedup_at_4_jobs": (int, float),
        "identical": bool,
    },
    # e22 reports the resident service's health: total requests pushed
    # through the engine across its legs, how many a stingy tenant had
    # refused at admission, how many the bounded queue shed under
    # saturation, and the warm-engine speedup over a cold CLI process
    "e22": {
        "requests": int,
        "rejected": int,
        "shed": int,
        "warm_speedup": (int, float),
    },
}


def fail(msg: str) -> None:
    print(f"check_bench_json: {msg}", file=sys.stderr)
    sys.exit(1)


def check(path: str) -> None:
    # the bench writes telemetry with an atomic temp-file + rename, so a
    # zero-length or truncated file means that protocol broke
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        fail(f"{path}: {exc}")
    if len(raw) == 0:
        fail(f"{path}: zero-length file (torn or unflushed write)")
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as exc:
        fail(f"{path}: truncated or partial JSON: {exc}")
    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    for key, ty in HEADLINE.items():
        if key not in doc:
            fail(f"{path}: missing key {key!r}")
        if not isinstance(doc[key], ty):
            fail(f"{path}: key {key!r} has type {type(doc[key]).__name__}")
    for key, ty in EXTRA_HEADLINE.get(doc.get("experiment"), {}).items():
        if key not in doc:
            fail(f"{path}: missing headline key {key!r} "
                 f"(required for {doc['experiment']})")
        if not isinstance(doc[key], ty):
            fail(f"{path}: key {key!r} has type {type(doc[key]).__name__}")
        if doc[key] < 0:
            fail(f"{path}: negative {key}")
    if doc["schema_version"] != 1:
        fail(f"{path}: unknown schema_version {doc['schema_version']}")
    if doc["wall_time_s"] < 0:
        fail(f"{path}: negative wall_time_s")
    if doc["jobs"] < 1:
        fail(f"{path}: jobs must be >= 1")
    if doc["checkpoint_writes"] < 0:
        fail(f"{path}: negative checkpoint_writes")
    if doc["events_recorded"] < 0:
        fail(f"{path}: negative events_recorded")
    for section in METRIC_SECTIONS:
        if not isinstance(doc["metrics"].get(section), dict):
            fail(f"{path}: metrics.{section} missing or not an object")
    for i, row in enumerate(doc["rows"]):
        if not isinstance(row, dict):
            fail(f"{path}: rows[{i}] is not an object")
    # budget accounting: a Guard.spent object for governed experiments,
    # null for micro/overhead (which measure the budget-less fast path)
    if "budget_spent" not in doc:
        fail(f"{path}: missing key 'budget_spent'")
    spent = doc["budget_spent"]
    if spent is not None:
        if not isinstance(spent, dict):
            fail(f"{path}: budget_spent must be an object or null")
        for key in ("fuel", "table_rows", "ball_peak", "catalogue_entries"):
            if not isinstance(spent.get(key), int):
                fail(f"{path}: budget_spent.{key} missing or not an int")
        if not isinstance(spent.get("elapsed_ns"), (int, float)):
            fail(f"{path}: budget_spent.elapsed_ns missing or not a number")
    print(f"{path}: ok ({len(doc['rows'])} rows, "
          f"{len(doc['metrics']['counters'])} counters)")


if __name__ == "__main__":
    if len(sys.argv) < 2:
        fail("no files given")
    for p in sys.argv[1:]:
        check(p)
