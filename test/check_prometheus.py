#!/usr/bin/env python3
"""Validate a Prometheus text-exposition scrape from the live exporter.

Usage: check_prometheus.py METRICS_FILE [--against STATS_JSON]

Checks the exposition shape (version 0.0.4): every sample line parses
as `name[{labels}] value`, every sample family is announced by a
preceding # TYPE line with a known type, no family is announced twice,
and every family name carries the folearn_ prefix.

With --against, the scrape is cross-checked against a --stats-json
snapshot from the SAME run: every snapshot counter that appears in the
scrape (sanitized name) must sit between 0 and its end-of-run total —
the scrape was taken mid-run, so monotone counters can only be lower
or equal. Counters register lazily on first use, so ones that only
came alive after the scrape are tolerated (but at least one counter
must cross-check, to catch scraping the wrong run entirely).
"""
import argparse
import json
import re
import sys

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9.eE+-]+|NaN|\+Inf|-Inf)$"
)
KNOWN_TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}


def fail(msg):
    print(f"check_prometheus: {msg}", file=sys.stderr)
    sys.exit(1)


def sanitize(name):
    return "folearn_" + re.sub(r"[^A-Za-z0-9_]", "_", name)


def family_of(name):
    for suffix in ("_sum", "_count", "_bucket"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse(path):
    types = {}
    samples = {}
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# HELP "):
                continue
            if line.startswith("# TYPE "):
                parts = line.split(" ")
                if len(parts) != 4:
                    fail(f"{path}:{lineno}: malformed TYPE line: {line!r}")
                _, _, name, ty = parts
                if ty not in KNOWN_TYPES:
                    fail(f"{path}:{lineno}: unknown metric type {ty!r}")
                if name in types:
                    fail(f"{path}:{lineno}: duplicate TYPE for {name}")
                types[name] = ty
                continue
            if line.startswith("#"):
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                fail(f"{path}:{lineno}: unparsable sample line: {line!r}")
            name, labels, value = m.groups()
            fam = family_of(name)
            if fam not in types and name not in types:
                fail(f"{path}:{lineno}: sample {name} has no TYPE line")
            if not name.startswith("folearn_"):
                fail(f"{path}:{lineno}: {name} lacks the folearn_ prefix")
            try:
                num = float(value)
            except ValueError:
                fail(f"{path}:{lineno}: bad value {value!r}")
            # bare (label-free) samples are the ones --against checks
            if not labels:
                samples[name] = num
    if not types:
        fail(f"{path}: no metric families found")
    return types, samples


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("metrics")
    ap.add_argument(
        "--against", metavar="STATS_JSON",
        help="a --stats-json snapshot from the same run; counters present "
             "in both must satisfy 0 <= scraped <= final")
    args = ap.parse_args()

    types, samples = parse(args.metrics)

    if args.against:
        with open(args.against, encoding="utf-8") as fh:
            snap = json.load(fh)
        counters = snap.get("counters")
        if not isinstance(counters, dict):
            fail(f"{args.against}: no counters section")
        checked = 0
        skipped = []
        for name, final in counters.items():
            prom = sanitize(name)
            if prom not in samples:
                # counters register lazily on first use; one that only
                # came alive after the scrape cannot be in it
                skipped.append(name)
                continue
            mid = samples[prom]
            if types.get(prom) != "counter":
                fail(f"{prom}: exported as {types.get(prom)!r}, not counter")
            if not (0 <= mid <= final):
                fail(f"counter {name}: scraped {mid} outside [0, {final}] "
                     "(mid-run scrape of a monotone counter)")
            checked += 1
        if checked == 0:
            fail("no counter of the snapshot appeared in the scrape")
        extra = f", {len(skipped)} registered after the scrape" if skipped \
            else ""
        print(f"check_prometheus: ok ({len(types)} families, "
              f"{checked} counters cross-checked{extra})")
    else:
        print(f"check_prometheus: ok ({len(types)} families, "
              f"{len(samples)} bare samples)")


if __name__ == "__main__":
    main()
