#!/usr/bin/env python3
"""Validate a Prometheus text-exposition scrape from the live exporter.

Usage: check_prometheus.py METRICS_FILE [--against STATS_JSON]
       check_prometheus.py --healthz RAW_RESPONSE_FILE [--expect-draining]

Checks the exposition shape (version 0.0.4): every sample line parses
as `name[{labels}] value`, every sample family is announced by a
preceding # TYPE line with a known type, no family is announced twice,
and every family name carries the folearn_ prefix.

With --against, the scrape is cross-checked against a --stats-json
snapshot from the SAME run: every snapshot counter that appears in the
scrape (sanitized name) must sit between 0 and its end-of-run total —
the scrape was taken mid-run, so monotone counters can only be lower
or equal. Counters register lazily on first use, so ones that only
came alive after the scrape are tolerated (but at least one counter
must cross-check, to catch scraping the wrong run entirely).

With --healthz, the file is a RAW HTTP response captured from the
exporter's /healthz route (e.g. `curl -isS .../healthz`).  A healthy
server must answer `200 OK` with body `ok`; with --expect-draining the
server was caught between SIGTERM and exit, and must answer
`503 Service Unavailable` with a body naming the drain — that is how
an external supervisor tells a graceful shutdown from a crash.
"""
import argparse
import json
import re
import sys

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9.eE+-]+|NaN|\+Inf|-Inf)$"
)
KNOWN_TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}


def fail(msg):
    print(f"check_prometheus: {msg}", file=sys.stderr)
    sys.exit(1)


def sanitize(name):
    return "folearn_" + re.sub(r"[^A-Za-z0-9_]", "_", name)


def family_of(name):
    for suffix in ("_sum", "_count", "_bucket"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse(path):
    types = {}
    samples = {}
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# HELP "):
                continue
            if line.startswith("# TYPE "):
                parts = line.split(" ")
                if len(parts) != 4:
                    fail(f"{path}:{lineno}: malformed TYPE line: {line!r}")
                _, _, name, ty = parts
                if ty not in KNOWN_TYPES:
                    fail(f"{path}:{lineno}: unknown metric type {ty!r}")
                if name in types:
                    fail(f"{path}:{lineno}: duplicate TYPE for {name}")
                types[name] = ty
                continue
            if line.startswith("#"):
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                fail(f"{path}:{lineno}: unparsable sample line: {line!r}")
            name, labels, value = m.groups()
            fam = family_of(name)
            if fam not in types and name not in types:
                fail(f"{path}:{lineno}: sample {name} has no TYPE line")
            if not name.startswith("folearn_"):
                fail(f"{path}:{lineno}: {name} lacks the folearn_ prefix")
            try:
                num = float(value)
            except ValueError:
                fail(f"{path}:{lineno}: bad value {value!r}")
            # bare (label-free) samples are the ones --against checks
            if not labels:
                samples[name] = num
    if not types:
        fail(f"{path}: no metric families found")
    return types, samples


def check_healthz(path, expect_draining):
    with open(path, "rb") as fh:
        raw = fh.read().decode("utf-8", errors="replace")
    head, sep, body = raw.partition("\r\n\r\n")
    if not sep:
        head, sep, body = raw.partition("\n\n")
    if not sep:
        fail(f"{path}: no header/body separator in raw response")
    status_line = head.splitlines()[0].strip()
    parts = status_line.split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        fail(f"{path}: malformed status line {status_line!r}")
    code = parts[1]
    if expect_draining:
        if code != "503":
            fail(f"{path}: draining server answered {status_line!r}, "
                 "want 503 Service Unavailable")
        if "draining" not in body:
            fail(f"{path}: 503 body {body!r} does not name the drain")
        print("check_prometheus: ok (healthz draining: 503 with reason)")
    else:
        if code != "200":
            fail(f"{path}: healthy server answered {status_line!r}, want 200")
        if body.strip() != "ok":
            fail(f"{path}: healthz body {body!r}, want 'ok'")
        print("check_prometheus: ok (healthz: 200 ok)")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("metrics", nargs="?")
    ap.add_argument(
        "--against", metavar="STATS_JSON",
        help="a --stats-json snapshot from the same run; counters present "
             "in both must satisfy 0 <= scraped <= final")
    ap.add_argument(
        "--healthz", metavar="RAW_RESPONSE_FILE",
        help="validate a raw HTTP response captured from /healthz instead "
             "of a metrics scrape")
    ap.add_argument(
        "--expect-draining", action="store_true",
        help="with --healthz: require 503 + a body naming the drain")
    args = ap.parse_args()

    if args.healthz:
        if args.metrics or args.against:
            fail("--healthz takes only the raw response file")
        check_healthz(args.healthz, args.expect_draining)
        return
    if args.expect_draining:
        fail("--expect-draining requires --healthz")
    if not args.metrics:
        fail("either METRICS_FILE or --healthz is required")

    types, samples = parse(args.metrics)

    if args.against:
        with open(args.against, encoding="utf-8") as fh:
            snap = json.load(fh)
        counters = snap.get("counters")
        if not isinstance(counters, dict):
            fail(f"{args.against}: no counters section")
        checked = 0
        skipped = []
        for name, final in counters.items():
            prom = sanitize(name)
            if prom not in samples:
                # counters register lazily on first use; one that only
                # came alive after the scrape cannot be in it
                skipped.append(name)
                continue
            mid = samples[prom]
            if types.get(prom) != "counter":
                fail(f"{prom}: exported as {types.get(prom)!r}, not counter")
            if not (0 <= mid <= final):
                fail(f"counter {name}: scraped {mid} outside [0, {final}] "
                     "(mid-run scrape of a monotone counter)")
            checked += 1
        if checked == 0:
            fail("no counter of the snapshot appeared in the scrape")
        extra = f", {len(skipped)} registered after the scrape" if skipped \
            else ""
        print(f"check_prometheus: ok ({len(types)} families, "
              f"{checked} counters cross-checked{extra})")
    else:
        print(f"check_prometheus: ok ({len(types)} families, "
              f"{len(samples)} bare samples)")


if __name__ == "__main__":
    main()
