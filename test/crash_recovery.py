#!/usr/bin/env python3
"""Kill-anywhere determinism harness for folearn's checkpoint/resume.

For each ERM solver, the harness:

  1. runs a reference `folearn learn --checkpoint` to completion and
     records its stdout and exit code;
  2. repeatedly starts the same command with `--checkpoint SNAP
     --resume SNAP`, SIGKILLs it at a seeded-random point, validates
     the surviving snapshot (magic, length, zlib CRC), and resumes;
  3. asserts that the run that finally completes produced stdout
     byte-identical to the reference and the same exit code.

`--sigint` instead starts one long checkpointed run, delivers SIGINT,
and asserts graceful shutdown: exit code 3, an "interrupted" report on
stderr, and a loadable snapshot.

CI runs this at --jobs 1 and --jobs 4.  No third-party dependencies.
"""

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
import zlib

MAGIC = b"FOLEARNSNAP1"

# Workloads sized so a reference run takes roughly 0.3-1.5 s: long
# enough that SIGKILL usually lands mid-enumeration, short enough for
# dozens of kill/resume cycles per solver.
SOLVERS = {
    "brute": [
        "-g", "cycle:24", "--color", "Red=0,3,6,9",
        "-t", "exists y. (E(x1,y) & Red(y))",
        "-k", "1", "-l", "1", "-q", "2", "--solver", "brute",
    ],
    "counting": [
        "-g", "cycle:28", "--color", "Red=0,3,6,9",
        "-t", "exists y. (E(x1,y) & Red(y))",
        "-k", "1", "-l", "1", "-q", "2", "--solver", "counting",
        "--tmax", "2",
    ],
    "local": [
        "-g", "grid:6x5", "--color", "Red=0,3,6,9",
        "-t", "exists y. (E(x1,y) & Red(y))",
        "-k", "1", "-l", "1", "-q", "2", "--solver", "local",
    ],
    "nd": [
        "-g", "tree:120:7", "--color", "Red=0,3,6,9,12",
        "-t", "exists y. (E(x1,y) & Red(y))",
        "-k", "1", "-l", "1", "-q", "1", "--solver", "nd",
        "--noise", "0.2", "--seed", "5",
    ],
}

MAX_CYCLES = 20


def fail(msg):
    print(f"crash_recovery: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_snapshot(path):
    """Validate the snapshot framing and return the decoded body."""
    with open(path, "rb") as fh:
        raw = fh.read()
    if not raw:
        fail(f"{path}: zero-length snapshot")
    header, _, body = raw.partition(b"\n")
    fields = header.split()
    if len(fields) != 3 or fields[0] != MAGIC:
        fail(f"{path}: bad header {header!r}")
    length = int(fields[2])
    if len(body) < length:
        fail(f"{path}: truncated body ({len(body)} < {length})")
    body = body[:length]
    if zlib.crc32(body) & 0xFFFFFFFF != int(fields[1], 16):
        fail(f"{path}: CRC mismatch")
    return json.loads(body)


def run_to_completion(cmd, timeout=120):
    proc = subprocess.run(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, timeout=timeout
    )
    return proc.returncode, proc.stdout, proc.stderr


def kill_resume_cycle(name, base_cmd, jobs, rng, tmpdir):
    snap = os.path.join(tmpdir, f"{name}.snap")
    jobs_args = ["--jobs", str(jobs)]

    # reference: one uninterrupted checkpointed run
    ref_snap = os.path.join(tmpdir, f"{name}.ref.snap")
    t0 = time.monotonic()
    ref_code, ref_out, ref_err = run_to_completion(
        base_cmd + jobs_args + ["--checkpoint", ref_snap, "--checkpoint-every", "1"]
    )
    ref_secs = time.monotonic() - t0
    if ref_code != 0:
        fail(f"{name}: reference run exited {ref_code}: {ref_err.decode()}")
    ref = load_snapshot(ref_snap)
    if not ref["complete"]:
        fail(f"{name}: reference snapshot not marked complete")
    print(
        f"  {name}: reference {ref_secs:.2f}s, exit 0, "
        f"final cursor {ref['cursor']}"
    )

    cmd = base_cmd + jobs_args + [
        "--checkpoint", snap, "--checkpoint-every", "1", "--resume", snap,
    ]
    kills = 0
    for cycle in range(MAX_CYCLES):
        # the last permitted cycle runs to completion unconditionally
        last = cycle == MAX_CYCLES - 1
        delay = rng.uniform(0.03, max(0.06, ref_secs * 0.8))
        proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE
        )
        try:
            out, err = proc.communicate(timeout=None if last else delay)
        except subprocess.TimeoutExpired:
            proc.kill()  # SIGKILL: no handler runs, no final flush
            proc.communicate()
            kills += 1
            if os.path.exists(snap):
                load_snapshot(snap)  # must never be torn
            continue
        if proc.returncode != ref_code:
            fail(
                f"{name}: resumed run exited {proc.returncode}, "
                f"reference exited {ref_code}: {err.decode()}"
            )
        if out != ref_out:
            fail(
                f"{name}: resumed stdout differs from reference\n"
                f"--- reference ---\n{ref_out.decode()}\n"
                f"--- resumed ---\n{out.decode()}"
            )
        final = load_snapshot(snap)
        if not final["complete"]:
            fail(f"{name}: final snapshot not marked complete")
        resumed_note = b"resuming from" in err
        print(
            f"  {name}: OK after {kills} SIGKILLs "
            f"({'resumed' if resumed_note else 'uninterrupted'} final run, "
            f"cursor {final['cursor']})"
        )
        return
    fail(f"{name}: no run completed within {MAX_CYCLES} cycles")


def sigint_smoke(binary, jobs, tmpdir):
    """SIGINT must flush a loadable snapshot and exit 3."""
    snap = os.path.join(tmpdir, "sigint.snap")
    # a galactic instance that cannot finish before the signal
    cmd = [
        binary, "learn", "-g", "cycle:60", "--color", "Red=0,3,6,9",
        "-t", "exists y. (E(x1,y) & Red(y))",
        "-k", "1", "-l", "2", "-q", "2", "--solver", "brute",
        "--jobs", str(jobs),
        "--checkpoint", snap, "--checkpoint-every", "1",
    ]
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    time.sleep(1.0)
    proc.send_signal(signal.SIGINT)
    try:
        _, err = proc.communicate(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("sigint: run did not stop within 30s of SIGINT")
    if proc.returncode != 3:
        fail(f"sigint: expected exit 3, got {proc.returncode}: {err.decode()}")
    if b"interrupted" not in err:
        fail(f"sigint: no 'interrupted' report on stderr: {err.decode()}")
    snapshot = load_snapshot(snap)
    if snapshot["complete"]:
        fail("sigint: interrupted snapshot must not be marked complete")
    print(f"  sigint: OK (exit 3, snapshot cursor {snapshot['cursor']})")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument(
        "--binary", default="_build/default/bin/folearn_cli.exe"
    )
    ap.add_argument("--jobs", type=int, default=1)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument(
        "--solvers", default=",".join(SOLVERS), help="comma-separated subset"
    )
    ap.add_argument("--sigint", action="store_true", help="run the SIGINT smoke only")
    args = ap.parse_args()

    if not os.path.exists(args.binary):
        fail(f"binary not found: {args.binary} (run dune build first)")

    with tempfile.TemporaryDirectory(prefix="folearn-crash-") as tmpdir:
        if args.sigint:
            print(f"crash_recovery: SIGINT smoke (jobs {args.jobs})")
            sigint_smoke(args.binary, args.jobs, tmpdir)
        else:
            rng = random.Random(args.seed)
            print(
                f"crash_recovery: jobs {args.jobs}, seed {args.seed}, "
                f"max {MAX_CYCLES} cycles/solver"
            )
            for name in args.solvers.split(","):
                base = [args.binary, "learn"] + SOLVERS[name]
                kill_resume_cycle(name, base, args.jobs, rng, tmpdir)
    print("crash_recovery: PASS")


if __name__ == "__main__":
    main()
