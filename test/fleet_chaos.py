#!/usr/bin/env python3
"""Chaos harness for folearn's fleet mode (multi-process ERM sharding).

Asserts the robustness contract of `learn --fleet`:

  1. clean     -- a fleet run's stdout is byte-identical to the
                  sequential solver's, exit code 0;
  2. workers   -- SIGKILLing random workers mid-run never changes the
                  output: the coordinator respawns them, expires their
                  leases, and the run completes byte-identical.  While
                  the run is live, no lease may be held by a dead
                  process for longer than the heartbeat timeout (plus
                  scheduling slack);
  3. coord     -- SIGKILLing the coordinator and re-running the same
                  command resumes from the fleet directory and the
                  completing run's stdout is byte-identical;
  4. poison    -- a deterministically failing chunk is quarantined
                  after max-attempts: exit 3, a quarantine report on
                  stderr, a best-so-far hypothesis on stdout;
  5. flaky     -- a transiently failing chunk is retried with backoff
                  and the run completes byte-identical, exit 0.

CI runs this at --workers 1 and --workers 4.  No third-party deps.
"""

import argparse
import json
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import time

WORKLOAD = [
    "learn", "-g", "cycle:30", "--color", "Red=0,3,6,9",
    "-t", "exists y. (E(x1,y) & Red(y))",
    "-k", "1", "-l", "1", "-q", "2", "--solver", "brute",
]

HEARTBEAT = 0.5
MAX_CYCLES = 12


def fail(msg):
    print(f"fleet_chaos: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def fleet_args(fleet_dir, workers, extra=()):
    return WORKLOAD + [
        "--fleet", fleet_dir, "--workers", str(workers),
        "--fleet-heartbeat", str(HEARTBEAT), "--fleet-chunk", "1",
    ] + list(extra)


def run(cmd, timeout=120):
    proc = subprocess.run(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, timeout=timeout
    )
    return proc.returncode, proc.stdout, proc.stderr


def pid_alive(pid):
    try:
        os.kill(pid, 0)
        return True
    except ProcessLookupError:
        return False
    except PermissionError:
        return True


def read_lease(path):
    """Parse a FOLEARNLEASE1 file; None if it vanished mid-read."""
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except FileNotFoundError:
        return None
    header, _, body = raw.partition(b"\n")
    fields = header.split()
    if len(fields) != 3 or fields[0] != b"FOLEARNLEASE1":
        return None  # torn read of an atomic rename; next poll sees it whole
    try:
        return json.loads(body[: int(fields[2])])
    except (ValueError, KeyError):
        return None


def worker_pids(fleet_dir):
    pids = []
    wdir = os.path.join(fleet_dir, "workers")
    if not os.path.isdir(wdir):
        return pids
    for name in os.listdir(wdir):
        try:
            with open(os.path.join(wdir, name)) as fh:
                reg = json.load(fh)
        except (OSError, ValueError):
            continue
        pid = reg.get("pid")
        if isinstance(pid, int) and pid_alive(pid):
            pids.append(pid)
    return pids


def check_lease_invariant(fleet_dir, grace):
    """No lease held by a dead process longer than the heartbeat."""
    ldir = os.path.join(fleet_dir, "leases")
    if not os.path.isdir(ldir):
        return
    now = time.time()
    for name in os.listdir(ldir):
        if not name.endswith(".lease"):
            continue
        lease = read_lease(os.path.join(ldir, name))
        if lease is None:
            continue
        pid = lease.get("pid")
        deadline = lease.get("deadline", now)
        if isinstance(pid, int) and pid > 0 and not pid_alive(pid):
            overdue = now - deadline
            if overdue > grace:
                fail(
                    f"lease {name} held by dead pid {pid} "
                    f"{overdue:.2f}s past its deadline (grace {grace:.2f}s)"
                )


def summary_of(fleet_dir):
    with open(os.path.join(fleet_dir, "summary.json")) as fh:
        return json.load(fh)


def reference(binary):
    code, out, err = run([binary] + WORKLOAD)
    if code != 0:
        fail(f"sequential reference exited {code}: {err.decode()}")
    return out


def scenario_clean(binary, workers, ref, tmpdir):
    fleet_dir = os.path.join(tmpdir, "clean")
    code, out, err = run([binary] + fleet_args(fleet_dir, workers))
    if code != 0:
        fail(f"clean: exited {code}: {err.decode()}")
    if out != ref:
        fail(
            f"clean: fleet stdout differs from sequential\n"
            f"--- sequential ---\n{ref.decode()}\n"
            f"--- fleet ---\n{out.decode()}"
        )
    s = summary_of(fleet_dir)
    if s["settled"] != s["total"]:
        fail(f"clean: settled {s['settled']} != total {s['total']}")
    print(f"  clean: OK (workers {workers}, {s['chunks']} chunks)")


def scenario_kill_workers(binary, workers, ref, rng, tmpdir):
    fleet_dir = os.path.join(tmpdir, "killw")
    # file-backed stdout: the winning hypothesis can outgrow a pipe
    # buffer, and this loop polls instead of draining
    out_path = os.path.join(tmpdir, "killw.out")
    err_path = os.path.join(tmpdir, "killw.err")
    with open(out_path, "wb") as out_fh, open(err_path, "wb") as err_fh:
        proc = subprocess.Popen(
            [binary] + fleet_args(fleet_dir, workers),
            stdout=out_fh, stderr=err_fh,
        )
        kills = 0
        grace = 3.0 * HEARTBEAT  # deadline + coordinator poll + slack
        deadline = time.monotonic() + 120
        while proc.poll() is None:
            if time.monotonic() > deadline:
                proc.kill()
                fail("workers: run did not finish within 120s")
            check_lease_invariant(fleet_dir, grace)
            pids = worker_pids(fleet_dir)
            if pids and rng.random() < 0.4:
                victim = rng.choice(pids)
                try:
                    os.kill(victim, signal.SIGKILL)
                    kills += 1
                except ProcessLookupError:
                    pass
            time.sleep(rng.uniform(0.05, 0.25))
    with open(out_path, "rb") as fh:
        out = fh.read()
    with open(err_path, "rb") as fh:
        err = fh.read()
    if proc.returncode != 0:
        fail(f"workers: exited {proc.returncode}: {err.decode()}")
    if out != ref:
        fail("workers: stdout differs from sequential after worker kills")
    s = summary_of(fleet_dir)
    print(
        f"  workers: OK after {kills} SIGKILLs "
        f"(respawned {s['workers_respawned']}, "
        f"leases expired {s['leases_expired']})"
    )


def scenario_kill_coordinator(binary, workers, ref, rng, tmpdir):
    fleet_dir = os.path.join(tmpdir, "killc")
    cmd = [binary] + fleet_args(fleet_dir, workers)
    kills = 0
    for cycle in range(MAX_CYCLES):
        last = cycle == MAX_CYCLES - 1
        delay = rng.uniform(0.1, 1.2)
        proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE
        )
        try:
            out, err = proc.communicate(timeout=None if last else delay)
        except subprocess.TimeoutExpired:
            proc.kill()  # SIGKILL: no DONE marker, orphaned workers
            proc.communicate()
            kills += 1
            # orphaned workers must drain by themselves (they poll
            # getppid); give them a beat, then verify
            t0 = time.monotonic()
            while worker_pids(fleet_dir) and time.monotonic() - t0 < 10:
                time.sleep(0.1)
            if worker_pids(fleet_dir):
                fail("coord: workers survived their coordinator by >10s")
            continue
        if proc.returncode != 0:
            fail(f"coord: resumed run exited {proc.returncode}: {err.decode()}")
        if out != ref:
            fail(
                f"coord: resumed stdout differs from sequential\n"
                f"--- sequential ---\n{ref.decode()}\n"
                f"--- resumed ---\n{out.decode()}"
            )
        print(f"  coord: OK after {kills} coordinator SIGKILLs")
        return
    fail(f"coord: no run completed within {MAX_CYCLES} cycles")


def scenario_poison(binary, workers, tmpdir):
    fleet_dir = os.path.join(tmpdir, "poison")
    code, out, err = run(
        [binary] + fleet_args(fleet_dir, workers, ["--fleet-chaos", "poison:5"])
    )
    if code != 3:
        fail(f"poison: expected exit 3, got {code}: {err.decode()}")
    if b"quarantined" not in err:
        fail(f"poison: no quarantine report on stderr: {err.decode()}")
    if b"chunk 5" not in err:
        fail(f"poison: report does not name the poisoned chunk: {err.decode()}")
    if b"best-so-far hypothesis" not in out:
        fail("poison: no best-so-far hypothesis on stdout")
    s = summary_of(fleet_dir)
    if s["chunks_quarantined"] != 1:
        fail(f"poison: summary says {s['chunks_quarantined']} quarantined")
    if not os.path.exists(os.path.join(fleet_dir, "poison", "000005.json")):
        fail("poison: no poison file for chunk 5")
    print(f"  poison: OK (exit 3, quarantined after {s['failures_retried'] + 1} attempts)")


def scenario_flaky(binary, workers, ref, tmpdir):
    fleet_dir = os.path.join(tmpdir, "flaky")
    code, out, err = run(
        [binary] + fleet_args(fleet_dir, workers, ["--fleet-chaos", "flaky:3:2"])
    )
    if code != 0:
        fail(f"flaky: exited {code}: {err.decode()}")
    if out != ref:
        fail("flaky: stdout differs from sequential")
    s = summary_of(fleet_dir)
    if s["failures_retried"] < 2:
        fail(f"flaky: expected >= 2 retries, summary says {s['failures_retried']}")
    if s["chunks_quarantined"] != 0:
        fail("flaky: transient failures must not quarantine")
    print(f"  flaky: OK (retried {s['failures_retried']}, exit 0)")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--binary", default="_build/default/bin/folearn_cli.exe")
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument(
        "--scenarios", default="clean,workers,coord,poison,flaky",
        help="comma-separated subset",
    )
    args = ap.parse_args()

    if not os.path.exists(args.binary):
        fail(f"binary not found: {args.binary} (run `dune build` first)")
    rng = random.Random(args.seed)
    wanted = args.scenarios.split(",")
    print(f"fleet_chaos: workers={args.workers} seed={args.seed}")

    tmpdir = tempfile.mkdtemp(prefix="folearn_fleet_chaos")
    try:
        ref = reference(args.binary)
        if "clean" in wanted:
            scenario_clean(args.binary, args.workers, ref, tmpdir)
        if "workers" in wanted and args.workers > 0:
            scenario_kill_workers(args.binary, args.workers, ref, rng, tmpdir)
        if "coord" in wanted:
            scenario_kill_coordinator(args.binary, args.workers, ref, rng, tmpdir)
        if "poison" in wanted:
            scenario_poison(args.binary, args.workers, tmpdir)
        if "flaky" in wanted:
            scenario_flaky(args.binary, args.workers, ref, tmpdir)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    print("fleet_chaos: all scenarios passed")


if __name__ == "__main__":
    main()
