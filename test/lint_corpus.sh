#!/bin/sh
# Corpus check for `folearn_cli lint`.
#
#   lint_corpus.sh BINARY GOOD_DIR BAD_DIR
#
# Every *.fo file carries its own lint invocation in a `# lint:` header.
# Files in GOOD_DIR (formula corpora extracted from examples/*.ml) must
# lint clean (exit 0); files in BAD_DIR are seeded defects and must make
# lint exit non-zero AND name the rule id from their `# expect:` header.

bin=$1
good_dir=$2
bad_dir=$3
fail=0

if [ -z "$bin" ] || [ -z "$good_dir" ] || [ -z "$bad_dir" ]; then
    echo "usage: lint_corpus.sh BINARY GOOD_DIR BAD_DIR" >&2
    exit 2
fi

for f in "$good_dir"/*.fo; do
    flags=$(sed -n 's/^# lint: *//p' "$f")
    if out=$("$bin" lint $flags "$f" 2>&1); then
        echo "ok (clean):    $f"
    else
        echo "FAIL (expected clean exit): $f" >&2
        echo "$out" | sed 's/^/    /' >&2
        fail=1
    fi
done

for f in "$bad_dir"/*.fo; do
    rule=$(sed -n 's/^# expect: *//p' "$f")
    flags=$(sed -n 's/^# lint: *//p' "$f")
    if [ -z "$rule" ]; then
        echo "FAIL (no '# expect:' header): $f" >&2
        fail=1
        continue
    fi
    if out=$("$bin" lint $flags "$f" 2>&1); then
        echo "FAIL (expected non-zero exit for $rule): $f" >&2
        echo "$out" | sed 's/^/    /' >&2
        fail=1
    elif echo "$out" | grep -q "$rule"; then
        echo "ok ($rule): $f"
    else
        echo "FAIL (diagnostics do not name $rule): $f" >&2
        echo "$out" | sed 's/^/    /' >&2
        fail=1
    fi
done

exit $fail
