#!/bin/sh
# Corpus check for `folearn_cli lint` and the `plan --strict` gate.
#
#   lint_corpus.sh BINARY GOOD_DIR BAD_DIR [SARIF_GOLDEN]
#
# Every *.fo file carries its own lint invocation in a `# lint:` header.
# Files in GOOD_DIR (formula corpora extracted from examples/*.ml) must
# lint clean (exit 0); files in BAD_DIR are seeded defects and must make
# lint exit non-zero AND name the rule id from their `# expect:` header.
#
# Good files may additionally carry a `# plan:` header with `folearn
# plan` arguments (graph, class budgets, resource limits): the first
# formula of the file is planned as the --target and the documented
# budget must be admitted by the static precheck (`plan --strict`
# exits 0).
#
# When SARIF_GOLDEN is given, `lint --format sarif` on the seeded
# unbound-variable defect must reproduce it byte for byte (the SARIF
# encoder is deterministic by contract).

bin=$1
good_dir=$2
bad_dir=$3
sarif_golden=$4
fail=0

if [ -z "$bin" ] || [ -z "$good_dir" ] || [ -z "$bad_dir" ]; then
    echo "usage: lint_corpus.sh BINARY GOOD_DIR BAD_DIR [SARIF_GOLDEN]" >&2
    exit 2
fi

for f in "$good_dir"/*.fo; do
    flags=$(sed -n 's/^# lint: *//p' "$f")
    if out=$("$bin" lint $flags "$f" 2>&1); then
        echo "ok (clean):    $f"
    else
        echo "FAIL (expected clean exit): $f" >&2
        echo "$out" | sed 's/^/    /' >&2
        fail=1
    fi
done

for f in "$bad_dir"/*.fo; do
    rule=$(sed -n 's/^# expect: *//p' "$f")
    flags=$(sed -n 's/^# lint: *//p' "$f")
    if [ -z "$rule" ]; then
        echo "FAIL (no '# expect:' header): $f" >&2
        fail=1
        continue
    fi
    if out=$("$bin" lint $flags "$f" 2>&1); then
        echo "FAIL (expected non-zero exit for $rule): $f" >&2
        echo "$out" | sed 's/^/    /' >&2
        fail=1
    elif echo "$out" | grep -q "$rule"; then
        echo "ok ($rule): $f"
    else
        echo "FAIL (diagnostics do not name $rule): $f" >&2
        echo "$out" | sed 's/^/    /' >&2
        fail=1
    fi
done

# pre-submit admission gate: every corpus query that documents a
# learning configuration must be statically feasible under it
for f in "$good_dir"/*.fo; do
    planflags=$(sed -n 's/^# plan: *//p' "$f")
    [ -z "$planflags" ] && continue
    target=$(grep -v '^[[:space:]]*#' "$f" | grep -v '^[[:space:]]*$' | head -1)
    if out=$("$bin" plan --strict $planflags -t "$target" 2>&1 >/dev/null); then
        echo "ok (plan admits): $f"
    else
        echo "FAIL (plan --strict rejected the documented budget): $f" >&2
        echo "$out" | sed 's/^/    /' >&2
        fail=1
    fi
done

# SARIF golden: deterministic encoder, pinned byte-for-byte.  The
# golden's artifact URI echoes the path the file was passed as, so the
# encoder must be invoked as `corpus/bad/…` regardless of where the
# harness started: when BAD_DIR carries a prefix (the CI job passes
# test/corpus/bad from the repo root), cd into it first.
if [ -n "$sarif_golden" ]; then
    f="$bad_dir/unbound_variable.fo"
    flags=$(sed -n 's/^# lint: *//p' "$f")
    prefix=${bad_dir%corpus/bad}
    if [ "$prefix" != "$bad_dir" ] && [ -n "$prefix" ]; then
        bin_abs=$(cd "$(dirname "$bin")" && pwd)/$(basename "$bin")
        (cd "$prefix" && "$bin_abs" lint --format sarif $flags \
            corpus/bad/unbound_variable.fo) > lint_sarif_out.json
    else
        "$bin" lint --format sarif $flags "$f" > lint_sarif_out.json
    fi
    if cmp -s lint_sarif_out.json "$sarif_golden"; then
        echo "ok (sarif golden): $f"
    else
        echo "FAIL (sarif output differs from golden $sarif_golden):" >&2
        diff "$sarif_golden" lint_sarif_out.json | sed 's/^/    /' >&2
        fail=1
    fi
fi

exit $fail
