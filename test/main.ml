(* Aggregated alcotest runner for the whole reproduction. *)

let () =
  Alcotest.run "folearn"
    [
      ("graph", Test_graph.suite);
      ("formula", Test_formula.suite);
      ("eval", Test_eval.suite);
      ("types", Test_types.suite);
      ("splitter", Test_splitter.suite);
      ("hypothesis", Test_hypothesis.suite);
      ("erm", Test_erm.suite);
      ("pac", Test_pac.suite);
      ("reduction", Test_reduction.suite);
      ("counting", Test_counting.suite);
      ("local", Test_local.suite);
      ("toolkit", Test_toolkit.suite);
      ("relational", Test_relational.suite);
      ("analysis", Test_analysis.suite);
      ("plan", Test_plan.suite);
      ("mso", Test_mso.suite);
      ("trees", Test_trees.suite);
      ("obs", Test_obs.suite);
      ("guard", Test_guard.suite);
      ("par", Test_par.suite);
      ("resil", Test_resil.suite);
      ("pulse", Test_pulse.suite);
      ("fleet", Test_fleet.suite);
      ("hotpath", Test_hotpath.suite);
      ("serve", Test_serve.suite);
    ]
