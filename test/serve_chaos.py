#!/usr/bin/env python3
"""Chaos harness for folserve, the resident learning service.

Scenarios (all run by default):

  identity     a learn/mc through the server is byte-identical to the
               one-shot CLI, at --jobs 1 and --jobs 4
  admission    an over-budget request is refused `rejected` with
               reason would_exhaust before any fuel burns, visible in
               the live /metrics counters
  overload     a saturated bounded queue sheds requests with a
               retryable `overloaded` (exit 75) answer
  disconnect   half-frames and clients that vanish mid-response leave
               the server serving (SIGPIPE/EPIPE regression)
  kill_resume  SIGKILL the server mid-job; a restarted server resumes
               the job from its snapshot and the polled result is
               byte-identical to an uninterrupted run
  drain        SIGTERM under load: in-flight work completes, /healthz
               answers 503 draining, new work is refused, exit 0

Run from the repo root:
    python3 test/serve_chaos.py --binary _build/default/bin/folearn_cli.exe
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import zlib

MAGIC = b"FOLEARNRPC1"
EXIT_RETRY = 75

# ~0.5 s of engine time: slow enough to stack up in a tiny queue
SHORT_LEARN = [
    "-g", "cycle:24", "--color", "Red=0,3,6,9",
    "--target", "exists y. (E(x1,y) & Red(y))",
    "-k", "1", "-l", "1", "-q", "2", "--solver", "brute",
]
# ~3 s: long enough that SIGKILL lands mid-enumeration after the
# first 0.5 s-cadence snapshot
LONG_LEARN = [
    "-g", "cycle:36", "--color", "Red=0,3,6,9",
    "--target", "exists y. (E(x1,y) & Red(y))",
    "-k", "1", "-l", "1", "-q", "2", "--solver", "brute",
]


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run(cmd, timeout=120, env=None):
    return subprocess.run(
        cmd, capture_output=True, text=True, timeout=timeout, env=env
    )


class Server:
    """One folearn serve process on a unix socket."""

    def __init__(self, binary, tmpdir, name, jobs=1, queue_cap=32,
                 metrics=False, tenants=(), env=None):
        self.sock = os.path.join(tmpdir, f"{name}.sock")
        self.metrics_sock = os.path.join(tmpdir, f"{name}.metrics.sock")
        self.job_dir = os.path.join(tmpdir, f"{name}-jobs")
        self.log_path = os.path.join(tmpdir, f"{name}.log")
        cmd = [
            binary, "serve",
            "--listen", f"unix:{self.sock}",
            "--job-dir", self.job_dir,
            "--jobs", str(jobs),
            "--queue-cap", str(queue_cap),
        ]
        if metrics:
            cmd += ["--metrics-addr", f"unix:{self.metrics_sock}"]
        for t in tenants:
            cmd += ["--tenant", t]
        self.log = open(self.log_path, "w")
        self.proc = subprocess.Popen(
            cmd, stdout=self.log, stderr=subprocess.STDOUT, env=env
        )
        self.wait_ready()

    def wait_ready(self, timeout=10.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            if self.proc.poll() is not None:
                with open(self.log_path) as f:
                    fail(f"server died at startup:\n{f.read()}")
            try:
                with open(self.log_path) as f:
                    if "listening on" in f.read():
                        return
            except FileNotFoundError:
                pass
            time.sleep(0.05)
        fail("server never reported listening")

    def sigkill(self):
        self.proc.kill()
        self.proc.wait()
        self.log.close()

    def sigterm_wait(self, timeout=60):
        self.proc.send_signal(signal.SIGTERM)
        rc = self.proc.wait(timeout=timeout)
        self.log.close()
        return rc

    def scrape_metrics(self):
        return http_get(self.metrics_sock, "/metrics").split(b"\r\n\r\n", 1)[1]


def http_get(sock_path, path):
    """Raw HTTP/1.0 GET over a unix socket; returns the whole response."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.settimeout(10.0)
        s.connect(sock_path)
        s.sendall(f"GET {path} HTTP/1.0\r\nHost: folearn\r\n\r\n".encode())
        chunks = []
        while True:
            got = s.recv(65536)
            if not got:
                break
            chunks.append(got)
    return b"".join(chunks)


def counter(metrics_text, name):
    total = 0
    found = False
    for line in metrics_text.decode().splitlines():
        if line.startswith(name + " ") or line.startswith(name + "_total "):
            total += float(line.split()[-1])
            found = True
    return total if found else None


def encode_frame(doc):
    body = json.dumps(doc).encode()
    return (
        MAGIC
        + b" %08x %d\n" % (zlib.crc32(body) & 0xFFFFFFFF, len(body))
        + body
        + b"\n"
    )


def call(binary, server, op, extra, retries=0):
    return run(
        [binary, "call", op, "--connect", f"unix:{server.sock}",
         "--retries", str(retries)] + extra
    )


# ------------------------------------------------------------------ #
# scenarios                                                           #
# ------------------------------------------------------------------ #

def scenario_identity(binary, tmpdir):
    for jobs in (1, 4):
        ref = run([binary, "learn", "--jobs", str(jobs)] + SHORT_LEARN)
        if ref.returncode != 0:
            fail(f"reference learn failed (jobs {jobs}): {ref.stderr}")
        srv = Server(binary, tmpdir, f"ident{jobs}", jobs=jobs)
        try:
            got = call(binary, srv, "learn", SHORT_LEARN)
            if got.returncode != 0:
                fail(f"served learn failed (jobs {jobs}): {got.stderr}")
            if got.stdout != ref.stdout:
                fail(f"served learn stdout differs from CLI at jobs {jobs}")
            if got.stderr != ref.stderr:
                fail(f"served learn stderr differs from CLI at jobs {jobs}")
            # a second, warm request must agree too
            warm = call(binary, srv, "learn", SHORT_LEARN)
            if warm.stdout != ref.stdout:
                fail(f"warm served learn diverged at jobs {jobs}")
            mc_args = ["-g", "cycle:24", "--color", "Red=0,3,6,9",
                       "--formula", "exists x1. Red(x1)"]
            ref_mc = run([binary, "mc"] + mc_args)
            got_mc = call(binary, srv, "mc", mc_args)
            if got_mc.stdout != ref_mc.stdout or \
               got_mc.returncode != ref_mc.returncode:
                fail(f"served mc diverged at jobs {jobs}")
        finally:
            if srv.sigterm_wait() != 0:
                fail(f"identity server did not drain cleanly (jobs {jobs})")
    print("ok identity: served learn/mc byte-identical at jobs 1 and 4")


def scenario_admission(binary, tmpdir):
    srv = Server(binary, tmpdir, "admission", metrics=True,
                 tenants=["stingy:fuel=3"])
    try:
        # a budget provably below the first-settle floor: refused
        r = call(binary, srv, "learn", SHORT_LEARN + ["--fuel", "2"])
        if r.returncode != 4:
            fail(f"over-budget call must exit 4, got {r.returncode}")
        if "exhaust" not in r.stderr:
            fail(f"rejection must name the exhaustion: {r.stderr!r}")
        # a tenant quota clamps an unlimited ask down to rejection
        r = call(binary, srv, "learn",
                 SHORT_LEARN + ["--tenant", "stingy"])
        if r.returncode != 4:
            fail(f"quota-clamped call must exit 4, got {r.returncode}")
        m = srv.scrape_metrics()
        rejected = counter(m, "folearn_serve_rejected")
        completed = counter(m, "folearn_serve_completed") or 0
        plan_rej = counter(m, "folearn_plan_precheck_rejections")
        if not rejected or rejected < 2:
            fail(f"serve_rejected must count both refusals, got {rejected}")
        if completed != 0:
            fail("nothing should have completed: rejection precedes work")
        if not plan_rej:
            fail("planner rejection counter must tick")
        # fuel-spend counters must stay untouched by rejected requests
        for name in ("folearn_erm_hypotheses_enumerated",
                     "folearn_erm_consistency_checks"):
            burned = counter(m, name)
            if burned:
                fail(f"rejected request burned fuel: {name}={burned}")
    finally:
        if srv.sigterm_wait() != 0:
            fail("admission server did not drain cleanly")
    print("ok admission: would_exhaust refusals before any fuel, counted")


def scenario_overload(binary, tmpdir):
    srv = Server(binary, tmpdir, "overload", queue_cap=1, metrics=True)
    try:
        procs = [
            subprocess.Popen(
                [binary, "call", "learn", "--connect", f"unix:{srv.sock}",
                 "--retries", "0"] + SHORT_LEARN,
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            )
            for _ in range(6)
        ]
        for p in procs:  # drain pipes: the hypothesis is ~0.5 MB
            p.communicate(timeout=120)
        codes = [p.returncode for p in procs]
        if 0 not in codes:
            fail(f"no request survived the stampede: {codes}")
        if EXIT_RETRY not in codes:
            fail(f"a saturated queue must shed with exit {EXIT_RETRY}: {codes}")
        m = srv.scrape_metrics()
        shed = (counter(m, "folearn_serve_shed") or 0) + \
               (counter(m, "folearn_serve_overloaded") or 0)
        if shed < 1:
            fail("shed/overloaded counters must tick under saturation")
        # a retrying client eventually gets through
        r = call(binary, srv, "learn", SHORT_LEARN, retries=5)
        if r.returncode != 0:
            fail(f"retries must eventually land: {r.returncode} {r.stderr}")
    finally:
        if srv.sigterm_wait() != 0:
            fail("overload server did not drain cleanly")
    print("ok overload: saturation sheds retryably, retries recover")


def scenario_disconnect(binary, tmpdir):
    srv = Server(binary, tmpdir, "disconnect", metrics=True)
    try:
        # half a frame, then gone
        frame = encode_frame({"schema_version": 1, "op": "ping"})
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
            s.connect(srv.sock)
            s.sendall(frame[: len(frame) // 2])
        # a full request whose reader vanishes before the (large)
        # response is written: the server eats EPIPE and keeps going
        req = encode_frame({
            "schema_version": 1, "op": "learn",
            "params": {
                "graph": "cycle:24", "colors": ["Red=0,3,6,9"],
                "target": "exists y. (E(x1,y) & Red(y))",
                "k": 1, "ell": 1, "q": 2, "solver": "brute",
            },
        })
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
            s.connect(srv.sock)
            s.sendall(req)
        time.sleep(1.5)  # let the engine finish and hit the dead socket
        # pure garbage
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
            s.connect(srv.sock)
            s.sendall(b"GET / HTTP/1.0\r\n\r\n")
            s.recv(65536)
        r = call(binary, srv, "ping", [])
        if r.returncode != 0:
            fail(f"server stopped serving after rude clients: {r.stderr}")
        r = call(binary, srv, "learn", SHORT_LEARN)
        if r.returncode != 0:
            fail("server lost the engine after a mid-write disconnect")
    finally:
        if srv.sigterm_wait() != 0:
            fail("disconnect server did not drain cleanly")
    print("ok disconnect: half-frames and dead readers leave the server up")


def wait_snapshot(job_dir, timeout=20.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if any(f.endswith(".snap") for f in
               (os.listdir(job_dir) if os.path.isdir(job_dir) else [])):
            return
        time.sleep(0.05)
    fail("job never wrote a snapshot")


def scenario_kill_resume(binary, tmpdir):
    ref = run([binary, "learn"] + LONG_LEARN)
    if ref.returncode != 0:
        fail(f"reference long learn failed: {ref.stderr}")

    srv = Server(binary, tmpdir, "kr")
    sub = run([binary, "submit", "--connect", f"unix:{srv.sock}"] + LONG_LEARN)
    if sub.returncode != 0:
        fail(f"submit failed: {sub.stderr}")
    job_id = sub.stdout.split()[3]  # "folearn submit: job <id> <status>"
    wait_snapshot(srv.job_dir)
    srv.sigkill()

    with open(os.path.join(srv.job_dir, "jobs.json")) as f:
        table = json.load(f)
    [entry] = table["jobs"]
    if entry["status"] not in ("queued", "running"):
        fail(f"SIGKILL landed too late to test resume: {entry['status']}")

    # a fresh incarnation on the same --job-dir resumes and finishes
    srv3 = Server(binary, tmpdir, "kr", metrics=True)
    try:
        poll = run([binary, "poll", job_id, "--connect", f"unix:{srv3.sock}",
                    "--wait", "60"])
        if poll.returncode != 0:
            fail(f"resumed job failed: {poll.returncode} {poll.stderr}")
        if poll.stdout != ref.stdout:
            fail("resumed job output differs from the uninterrupted run")
        m = srv3.scrape_metrics()
        if not counter(m, "folearn_serve_jobs_resumed"):
            fail("jobs_resumed must tick after a restart")
        # resubmitting the same work is idempotent: same id, still done
        again = run([binary, "submit", "--connect", f"unix:{srv3.sock}"]
                    + LONG_LEARN)
        if job_id not in again.stdout:
            fail("resubmit must return the same job id")
        with open(os.path.join(srv3.job_dir, "jobs.json")) as f:
            jobs = json.load(f)["jobs"]
        if len(jobs) != 1 or jobs[0]["status"] != "done":
            fail("resubmit must not duplicate or rerun a settled job")
        # a stale/foreign id gets the structured mismatch, not garbage
        stale = run([binary, "poll", "0" * 32,
                     "--connect", f"unix:{srv3.sock}"])
        if stale.returncode != 2:
            fail(f"stale poll must be a usage error, got {stale.returncode}")
    finally:
        if srv3.sigterm_wait() != 0:
            fail("kill_resume server did not drain cleanly")
    print("ok kill_resume: SIGKILL mid-job, restart resumes bit-identically")


def scenario_drain(binary, tmpdir):
    ref = run([binary, "learn"] + LONG_LEARN)
    env = dict(os.environ, FOLEARN_DRAIN_GRACE="1.5")
    srv = Server(binary, tmpdir, "drain", metrics=True, env=env)
    inflight = subprocess.Popen(
        [binary, "call", "learn", "--connect", f"unix:{srv.sock}"]
        + LONG_LEARN,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    time.sleep(0.8)  # request is on the engine now
    srv.proc.send_signal(signal.SIGTERM)
    time.sleep(0.3)
    healthz = http_get(srv.metrics_sock, "/healthz")
    healthz_path = os.path.join(tmpdir, "healthz.raw")
    with open(healthz_path, "wb") as f:
        f.write(healthz)
    check = run([sys.executable,
                 os.path.join(os.path.dirname(__file__),
                              "check_prometheus.py"),
                 "--healthz", healthz_path, "--expect-draining"])
    if check.returncode != 0:
        fail(f"healthz during drain: {check.stdout}{check.stderr}")
    out, err = inflight.communicate(timeout=60)
    if inflight.returncode != 0:
        fail(f"in-flight request must complete through a drain: {err}")
    if out != ref.stdout:
        fail("drained in-flight output differs from the one-shot CLI")
    rc = srv.proc.wait(timeout=60)
    srv.log.close()
    if rc != 0:
        fail(f"drained server must exit 0, got {rc}")
    # the socket is gone: new work is refused, not hung
    late = run([binary, "call", "ping", "--connect", f"unix:{srv.sock}"],
               timeout=30)
    if late.returncode == 0:
        fail("a drained server must not accept new work")
    print("ok drain: in-flight completed, healthz 503-draining, exit 0")


SCENARIOS = {
    "identity": scenario_identity,
    "admission": scenario_admission,
    "overload": scenario_overload,
    "disconnect": scenario_disconnect,
    "kill_resume": scenario_kill_resume,
    "drain": scenario_drain,
}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--binary", default="_build/default/bin/folearn_cli.exe"
    )
    ap.add_argument(
        "--scenarios", default=",".join(SCENARIOS),
        help="comma-separated subset of: " + ", ".join(SCENARIOS),
    )
    args = ap.parse_args()
    binary = os.path.abspath(args.binary)
    if not os.path.exists(binary):
        fail(f"binary not found: {binary} (dune build first)")
    names = [s for s in args.scenarios.split(",") if s]
    for name in names:
        if name not in SCENARIOS:
            fail(f"unknown scenario {name!r}")
    for name in names:
        with tempfile.TemporaryDirectory(prefix=f"folserve-{name}-") as td:
            SCENARIOS[name](binary, td)
    print(f"serve chaos: all {len(names)} scenarios passed")


if __name__ == "__main__":
    main()
