(* Unit tests for the folint static-analysis library: one test per rule
   id, plus qcheck properties tying Genform-produced formulas to the
   budget rules. *)

open Analysis
module F = Fo.Formula

let has rule ds = List.exists (fun d -> d.Diagnostic.rule = rule) ds
let rules ds = List.map (fun d -> d.Diagnostic.rule) ds

let check_has name rule ds =
  Alcotest.(check bool)
    (Printf.sprintf "%s flags %s (got [%s])" name rule
       (String.concat "; " (rules ds)))
    true (has rule ds)

let check_clean name ds =
  Alcotest.(check (list string))
    (Printf.sprintf "%s is clean" name)
    [] (rules (Diagnostic.errors ds))

let vocab = Vocab.graph [ "Red"; "Blue" ]

(* ------------------------------------------------------------------ *)
(* Signature conformance                                               *)
(* ------------------------------------------------------------------ *)

let test_unknown_relation () =
  check_has "Green(x)" "unknown-relation"
    (Fo_check.check ~vocab (F.color "Green" "x"));
  check_clean "Red(x)" (Fo_check.check ~vocab (F.color "Red" "x"));
  (* no vocabulary declared: signature checks are skipped *)
  check_clean "Green(x), no vocab" (Fo_check.check (F.color "Green" "x"))

let test_arity_mismatch () =
  let v = Vocab.declare Vocab.empty "Red" 2 in
  check_has "Red/2 used unary" "arity-mismatch"
    (Fo_check.check ~vocab:v (F.color "Red" "x"));
  let v = Vocab.declare (Vocab.graph []) "E" 3 in
  check_has "E/3 used binary" "arity-mismatch"
    (Fo_check.check ~vocab:v (F.edge "x" "y"));
  check_has "E undeclared" "unknown-relation"
    (Fo_check.check ~vocab:Vocab.empty (F.edge "x" "y"))

let test_vocab_parse () =
  (match Vocab.of_string "E/2, Red/1, Blue" with
  | Ok v ->
      Alcotest.(check (option int)) "E arity" (Some 2) (Vocab.arity v "E");
      Alcotest.(check (option int)) "bare name is unary" (Some 1)
        (Vocab.arity v "Blue")
  | Error m -> Alcotest.fail m);
  match Vocab.of_string "Red/x" with
  | Ok _ -> Alcotest.fail "Red/x should not parse"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Scope analysis                                                      *)
(* ------------------------------------------------------------------ *)

let test_unbound_variable () =
  check_has "E(x, y) as phi(x)" "unbound-variable"
    (Fo_check.check ~allowed_free:[ "x" ] (F.edge "x" "y"));
  check_clean "E(x, y) as phi(x, y)"
    (Fo_check.check ~allowed_free:[ "x"; "y" ] (F.edge "x" "y"));
  check_clean "bound use"
    (Fo_check.check ~allowed_free:[ "x" ] (F.exists "y" (F.edge "x" "y")));
  (* without a declared interface every free variable is fine *)
  check_clean "no interface" (Fo_check.check (F.edge "x" "y"))

let test_shadowed_binder () =
  let f = F.Exists ("x", F.Exists ("x", F.edge "x" "x")) in
  check_has "exists x. exists x" "shadowed-binder" (Fo_check.check f);
  let g = F.Exists ("x", F.edge "x" "y") in
  check_has "binder over interface var" "shadowed-binder"
    (Fo_check.check ~allowed_free:[ "x"; "y" ] g);
  check_clean "distinct binders"
    (Fo_check.check
       (F.Exists ("u", F.Exists ("v", F.edge "u" "v"))))

let test_vacuous_quantifier () =
  let f = F.Exists ("z", F.edge "x" "y") in
  check_has "exists z unused" "vacuous-quantifier" (Fo_check.check f);
  check_clean "exists used"
    (Fo_check.check (F.Exists ("z", F.edge "x" "z")))

(* ------------------------------------------------------------------ *)
(* Budgets                                                             *)
(* ------------------------------------------------------------------ *)

let test_rank_over_budget () =
  let f = F.Exists ("u", F.Exists ("v", F.edge "u" "v")) in
  check_has "rank 2 at q=1" "rank-over-budget"
    (Fo_check.check ~budget:(Fo_check.budget ~max_rank:1 ()) f);
  check_clean "rank 2 at q=2"
    (Fo_check.check ~budget:(Fo_check.budget ~max_rank:2 ()) f)

let test_free_over_budget () =
  let f = F.edge "x" "y" in
  check_has "2 free at budget 1" "free-over-budget"
    (Fo_check.check ~budget:(Fo_check.budget ~max_free:1 ()) f);
  check_clean "2 free at budget 2"
    (Fo_check.check ~budget:(Fo_check.budget ~max_free:2 ()) f)

let test_invalid_parameter () =
  check_has "k = 0" "invalid-parameter" (Guard.budgets ~k:0 ());
  check_has "ell < 0" "invalid-parameter" (Guard.budgets ~k:1 ~ell:(-1) ());
  Alcotest.(check (list string))
    "legal budgets" []
    (rules (Guard.budgets ~k:2 ~ell:1 ~q:3 ~tmax:2 ~radius:0 ()))

(* ------------------------------------------------------------------ *)
(* Locality                                                            *)
(* ------------------------------------------------------------------ *)

let test_dist_recognizer () =
  List.iter
    (fun d ->
      match Fo_check.as_dist_le (Fo.Localize.dist_le ~d "x" "y") with
      | Some ("x", "y", d') ->
          Alcotest.(check int) (Printf.sprintf "dist_le %d" d) d d'
      | _ -> Alcotest.fail (Printf.sprintf "dist_le %d not recognised" d))
    [ 0; 1; 2; 3; 4; 7; 24 ]

let test_non_local () =
  let unguarded = F.exists "y" (F.edge "x" "y") in
  check_has "unguarded quantifier" "non-local"
    (Fo_check.check ~allowed_free:[ "x" ]
       ~budget:(Fo_check.budget ~radius:3 ())
       unguarded);
  (* relativize makes it syntactically r-local: clean at radius r ... *)
  let local = Fo.Localize.relativize ~r:2 ~around:[ "x" ] unguarded in
  check_clean "relativized at r=2"
    (Fo_check.check ~allowed_free:[ "x" ]
       ~budget:(Fo_check.budget ~radius:2 ())
       local);
  (* ... and over budget one radius down *)
  check_has "relativized at r=2, budget 1" "non-local"
    (Fo_check.check ~allowed_free:[ "x" ]
       ~budget:(Fo_check.budget ~radius:1 ())
       local);
  Alcotest.(check (option int))
    "inferred radius" (Some 2)
    (Fo_check.inferred_radius ~around:[ "x" ] local);
  Alcotest.(check (option int))
    "unguarded has no radius" None
    (Fo_check.inferred_radius ~around:[ "x" ] unguarded)

let test_nested_locality () =
  (* nested quantifiers are all guarded to the SAME centres by
     relativize, so the inferred radius stays r *)
  let f =
    F.exists "u" (F.and_ [ F.edge "x" "u"; F.forall "v" (F.implies (F.edge "u" "v") (F.color "Red" "v")) ])
  in
  let local = Fo.Localize.relativize ~r:3 ~around:[ "x" ] f in
  Alcotest.(check (option int))
    "nested inferred radius" (Some 3)
    (Fo_check.inferred_radius ~around:[ "x" ] local);
  (* quantifier-free formulas are 0-local *)
  Alcotest.(check (option int))
    "atom radius" (Some 0)
    (Fo_check.inferred_radius ~around:[ "x"; "y" ] (F.edge "x" "y"))

(* ------------------------------------------------------------------ *)
(* Hints                                                               *)
(* ------------------------------------------------------------------ *)

let test_hints () =
  check_has "~~phi" "double-negation"
    (Fo_check.check (F.Not (F.Not (F.edge "x" "y"))));
  check_has "x = x" "trivial-atom" (Fo_check.check (F.eq "x" "x"));
  check_has "E(x, x)" "trivial-atom" (Fo_check.check (F.edge "x" "x"));
  check_has "duplicate conjunct" "duplicate-junct"
    (Fo_check.check (F.And [ F.edge "x" "y"; F.edge "x" "y" ]));
  check_has "false conjunct" "constant-junct"
    (Fo_check.check (F.And [ F.edge "x" "y"; F.False ]));
  check_has "true disjunct" "constant-junct"
    (Fo_check.check (F.Or [ F.edge "x" "y"; F.True ]));
  (* hints never make a formula erroneous *)
  check_clean "hints are not errors"
    (Fo_check.check (F.Not (F.Not (F.eq "x" "x"))))

(* ------------------------------------------------------------------ *)
(* MSO                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mso_rules () =
  let open Mso.Formula in
  check_has "kind clash" "kind-clash"
    (Mso_check.check_word (And [ Mem ("x", "X"); Less ("X", "y") ]));
  check_has "unknown letter" "unknown-letter"
    (Mso_check.check_word ~sigma:2 (Letter (5, "x")));
  check_clean "known letter"
    (Mso_check.check_word ~sigma:2 ~allowed_free:[ "x" ] (Letter (1, "x")));
  check_has "mso unbound" "unbound-variable"
    (Mso_check.check_word ~allowed_free:[ "x" ] (Less ("x", "y")));
  check_has "mso shadowed" "shadowed-binder"
    (Mso_check.check_word
       (ExistsPos ("x", ExistsPos ("x", Less ("x", "x")))));
  check_has "mso vacuous" "vacuous-quantifier"
    (Mso_check.check_word (ExistsSet ("X", Less ("x", "y"))));
  check_has "mso rank budget" "rank-over-budget"
    (Mso_check.check_word ~max_rank:1
       (ExistsPos ("x", ExistsSet ("X", Mem ("x", "X")))));
  check_clean "mso sentence"
    (Mso_check.check_word ~sigma:2 ~allowed_free:[]
       (ExistsPos ("x", Letter (0, "x"))))

let test_mso_trees () =
  let open Mso.Tree_formula in
  check_has "tree kind clash" "kind-clash"
    (Mso_check.check_tree (And [ Mem ("x", "X"); Child1 ("X", "y") ]));
  check_has "tree unknown label" "unknown-letter"
    (Mso_check.check_tree ~sigma:2 (Label (3, "x")));
  check_clean "tree sentence"
    (Mso_check.check_tree ~sigma:2 ~allowed_free:[]
       (ExistsPos ("x", Label (1, "x"))))

(* ------------------------------------------------------------------ *)
(* Diagnostics plumbing                                                *)
(* ------------------------------------------------------------------ *)

let test_diagnostic_plumbing () =
  let ds =
    Fo_check.check ~vocab ~allowed_free:[ "x" ]
      (F.And [ F.color "Green" "z"; F.Not (F.Not F.True) ])
  in
  (match Diagnostic.worst ds with
  | Some Diagnostic.Error -> ()
  | _ -> Alcotest.fail "worst should be Error");
  (* sorted: errors first *)
  (match Diagnostic.sort ds with
  | d :: _ ->
      Alcotest.(check string) "errors first" "error"
        (Diagnostic.severity_to_string d.Diagnostic.severity)
  | [] -> Alcotest.fail "expected diagnostics");
  let json = Diagnostic.list_to_json ds in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json mentions rule" true
    (contains "unknown-relation" json)

let test_guard_require () =
  (try
     Guard.require ~what:"test" (Guard.budgets ~k:0 ());
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument m ->
     Alcotest.(check bool) "message names the rule" true
       (String.length m > 0));
  (* warnings alone do not trip the guard *)
  Guard.require ~what:"test"
    (Fo_check.check (F.Exists ("z", F.edge "x" "y")))

(* The library entry points reject bad inputs with rendered
   diagnostics in the Invalid_argument payload. *)
let test_core_guards () =
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let expect_rule name rule thunk =
    try
      thunk ();
      Alcotest.failf "%s: expected Invalid_argument" name
    with Invalid_argument m ->
      Alcotest.(check bool)
        (Printf.sprintf "%s names %s (got %S)" name rule m)
        true (contains rule m)
  in
  let g = Cgraph.Gen.path 4 in
  expect_rule "Erm_brute.solve k=0" "invalid-parameter" (fun () ->
      ignore (Folearn.Erm_brute.solve g ~k:0 ~ell:0 ~q:0 []));
  expect_rule "Erm_brute.solve bad arity" "arity-mismatch" (fun () ->
      ignore (Folearn.Erm_brute.solve g ~k:1 ~ell:0 ~q:0 [ ([| 0; 1 |], true) ]));
  expect_rule "Erm_counting.solve tmax=0" "invalid-parameter" (fun () ->
      ignore (Folearn.Erm_counting.solve g ~k:1 ~ell:0 ~q:0 ~tmax:0 []));
  expect_rule "Hypothesis.of_formula stray free var" "unbound-variable"
    (fun () ->
      ignore
        (Folearn.Hypothesis.of_formula g ~k:1 ~formula:(F.edge "x1" "z")
           ~params:[||]));
  expect_rule "Reduction.model_check non-sentence" "unbound-variable"
    (fun () ->
      ignore
        (Folearn.Reduction.model_check
           ~oracle:Folearn.Reduction.exact_oracle g (F.edge "x" "y")));
  expect_rule "Sample.label_with_query stray free var" "unbound-variable"
    (fun () ->
      ignore
        (Folearn.Sample.label_with_query g ~formula:(F.edge "x1" "z")
           ~xvars:[ "x1" ] [ [| 0 |] ]))

(* ------------------------------------------------------------------ *)
(* QCheck: Genform formulas against the budget rules                   *)
(* ------------------------------------------------------------------ *)

let qcheck_budget_clean =
  QCheck.Test.make ~name:"genform formulas are clean at their own budgets"
    ~count:200 QCheck.small_int (fun seed ->
      let cfg =
        { Fo.Genform.default with allow_counting = seed mod 2 = 0 }
      in
      let f = Fo.Genform.formula ~config:cfg ~seed () in
      let q = F.quantifier_rank f in
      let frees = F.free_vars f in
      let ds =
        Fo_check.check
          ~vocab:(Vocab.graph cfg.Fo.Genform.colors)
          ~allowed_free:frees
          ~budget:
            (Fo_check.budget ~max_rank:q ~max_free:(List.length frees) ())
          f
      in
      Diagnostic.errors ds = [])

let qcheck_budget_violation =
  QCheck.Test.make
    ~name:"genform formulas violate the budget rules one notch down"
    ~count:200 QCheck.small_int (fun seed ->
      let f = Fo.Genform.formula ~seed () in
      let q = F.quantifier_rank f in
      let frees = F.free_vars f in
      let rank_violated =
        q = 0
        || has "rank-over-budget"
             (Fo_check.check ~budget:(Fo_check.budget ~max_rank:(q - 1) ()) f)
      in
      let free_violated =
        frees = []
        || has "free-over-budget"
             (Fo_check.check
                ~budget:
                  (Fo_check.budget ~max_free:(List.length frees - 1) ())
                f)
      in
      rank_violated && free_violated)

let qcheck_relativize_local =
  QCheck.Test.make
    ~name:"relativized genform formulas are syntactically r-local"
    ~count:100
    QCheck.(pair small_int (int_range 1 4))
    (fun (seed, r) ->
      let f = Fo.Genform.formula ~seed () in
      let around =
        match F.free_vars f with [] -> [ "x" ] | vs -> vs
      in
      let local = Fo.Localize.relativize ~r ~around f in
      match Fo_check.inferred_radius ~around local with
      | Some r' -> r' <= r
      | None -> false)

let suite =
  [
    Alcotest.test_case "unknown-relation" `Quick test_unknown_relation;
    Alcotest.test_case "arity-mismatch" `Quick test_arity_mismatch;
    Alcotest.test_case "vocab parsing" `Quick test_vocab_parse;
    Alcotest.test_case "unbound-variable" `Quick test_unbound_variable;
    Alcotest.test_case "shadowed-binder" `Quick test_shadowed_binder;
    Alcotest.test_case "vacuous-quantifier" `Quick test_vacuous_quantifier;
    Alcotest.test_case "rank-over-budget" `Quick test_rank_over_budget;
    Alcotest.test_case "free-over-budget" `Quick test_free_over_budget;
    Alcotest.test_case "invalid-parameter" `Quick test_invalid_parameter;
    Alcotest.test_case "dist_le recognizer" `Quick test_dist_recognizer;
    Alcotest.test_case "non-local" `Quick test_non_local;
    Alcotest.test_case "nested locality" `Quick test_nested_locality;
    Alcotest.test_case "simplification hints" `Quick test_hints;
    Alcotest.test_case "mso word rules" `Quick test_mso_rules;
    Alcotest.test_case "mso tree rules" `Quick test_mso_trees;
    Alcotest.test_case "diagnostic plumbing" `Quick test_diagnostic_plumbing;
    Alcotest.test_case "guard require" `Quick test_guard_require;
    Alcotest.test_case "core entry-point guards" `Quick test_core_guards;
    QCheck_alcotest.to_alcotest qcheck_budget_clean;
    QCheck_alcotest.to_alcotest qcheck_budget_violation;
    QCheck_alcotest.to_alcotest qcheck_relativize_local;
  ]
