(* Tests for the direct model checker. *)

open Cgraph
module F = Fo.Formula
module E = Modelcheck.Eval

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let p4 = Gen.path 4
let c5 = Gen.cycle 5

let petersen =
  (* outer 5-cycle, inner 5-star-polygon, spokes *)
  Graph.create ~n:10
    ~edges:
      [
        (0, 1); (1, 2); (2, 3); (3, 4); (4, 0);
        (5, 7); (7, 9); (9, 6); (6, 8); (8, 5);
        (0, 5); (1, 6); (2, 7); (3, 8); (4, 9);
      ]
    ~colors:[]

let test_atoms () =
  check "edge atom" true (E.holds p4 [ ("x", 0); ("y", 1) ] (F.edge "x" "y"));
  check "no edge" false (E.holds p4 [ ("x", 0); ("y", 2) ] (F.edge "x" "y"));
  check "eq" true (E.holds p4 [ ("x", 2); ("y", 2) ] (F.eq "x" "y"));
  check "true" true (E.holds p4 [] F.tru);
  check "false" false (E.holds p4 [] F.fls)

let test_unbound () =
  check "unbound raises" true
    (try
       ignore (E.holds p4 [] (F.eq "x" "y"));
       false
     with E.Unbound_variable _ -> true)

let test_duplicate_binding () =
  (* a duplicate name in the assignment list would silently shadow the
     earlier value; holds pins this to Invalid_argument instead *)
  check "duplicate binding raises" true
    (try
       ignore (E.holds p4 [ ("x", 0); ("x", 1) ] F.tru);
       false
     with Invalid_argument _ -> true)

let test_quantifiers () =
  (* path has two endpoints: exists a vertex of degree 1 *)
  let deg1 =
    F.exists "x"
      (F.exists "y"
         (F.and_
            [
              F.edge "x" "y";
              F.forall "z" (F.implies (F.edge "x" "z") (F.eq "z" "y"));
            ]))
  in
  check "path has a degree-1 vertex" true (E.sentence p4 deg1);
  check "cycle has none" false (E.sentence c5 deg1)

let test_regularity () =
  (* every vertex has exactly 3 neighbours: Petersen graph *)
  let three =
    F.forall "x"
      (F.exists_many [ "a"; "b"; "c" ]
         (F.and_
            [
              F.edge "x" "a"; F.edge "x" "b"; F.edge "x" "c";
              F.not_ (F.eq "a" "b"); F.not_ (F.eq "a" "c"); F.not_ (F.eq "b" "c");
              F.forall "d"
                (F.implies (F.edge "x" "d")
                   (F.or_ [ F.eq "d" "a"; F.eq "d" "b"; F.eq "d" "c" ]));
            ]))
  in
  check "Petersen is 3-regular" true (E.sentence petersen three);
  check "path is not" false (E.sentence p4 three)

let test_triangle_freeness () =
  let triangle =
    F.exists_many [ "a"; "b"; "c" ]
      (F.and_ [ F.edge "a" "b"; F.edge "b" "c"; F.edge "a" "c" ])
  in
  check "Petersen is triangle-free" false (E.sentence petersen triangle);
  check "K4 has a triangle" true (E.sentence (Gen.clique 4) triangle)

let test_colors_in_eval () =
  let g = Graph.with_colors p4 [ ("End", [ 0; 3 ]) ] in
  let phi = F.forall "x" (F.implies (F.color "End" "x") (F.not_ (F.exists "y" (F.exists "z" (F.and_ [ F.edge "x" "y"; F.edge "x" "z"; F.not_ (F.eq "y" "z") ]))))) in
  check "endpoints have < 2 neighbours" true (E.sentence g phi)

let test_holds_tuple () =
  check "positional binding" true
    (E.holds_tuple p4 ~vars:[ "x"; "y" ] [| 1; 2 |] (F.edge "x" "y"));
  check "mismatch raises" true
    (try
       ignore (E.holds_tuple p4 ~vars:[ "x" ] [| 1; 2 |] F.tru);
       false
     with Invalid_argument _ -> true)

let test_answers () =
  let ans = E.answers p4 ~vars:[ "x"; "y" ] (F.edge "x" "y") in
  check_int "directed edge count" 6 (List.length ans);
  check_int "count_answers agrees" 6
    (E.count_answers p4 ~vars:[ "x"; "y" ] (F.edge "x" "y"));
  let isolated = E.answers c5 ~vars:[ "x" ] (F.forall "y" (F.not_ (F.edge "x" "y"))) in
  check_int "no isolated vertices in cycle" 0 (List.length isolated)

let test_implies_iff_eval () =
  check "implies" true
    (E.holds p4 [ ("x", 0); ("y", 2) ] (F.Implies (F.edge "x" "y", F.fls)));
  check "iff" true
    (E.holds p4 [ ("x", 0); ("y", 1) ]
       (F.Iff (F.edge "x" "y", F.edge "y" "x")))

(* agreement with a second evaluation strategy: evaluate via answers *)
let eval_agrees_with_answers =
  QCheck.Test.make ~name:"holds agrees with membership in answers" ~count:60
    QCheck.(int_range 0 5000)
    (fun seed ->
      let st = Random.State.make [| seed; 0xe |] in
      let g =
        Gen.colored ~seed ~colors:[ "Red" ] (Gen.gnp ~seed:(seed + 1) ~n:6 ~p:0.4)
      in
      let f = Test_formula.gen_formula [ "x"; "y" ] 3 st in
      let ans = E.answers g ~vars:[ "x"; "y" ] f in
      List.for_all
        (fun vx ->
          List.for_all
            (fun vy ->
              E.holds g [ ("x", vx); ("y", vy) ] f
              = List.exists (fun t -> t = [| vx; vy |]) ans)
            [ 0; 3; 5 ])
        [ 1; 2; 4 ])

let suite =
  [
    Alcotest.test_case "atoms" `Quick test_atoms;
    Alcotest.test_case "unbound variable" `Quick test_unbound;
    Alcotest.test_case "duplicate binding rejected" `Quick
      test_duplicate_binding;
    Alcotest.test_case "quantifiers" `Quick test_quantifiers;
    Alcotest.test_case "3-regularity of Petersen" `Quick test_regularity;
    Alcotest.test_case "triangle-freeness" `Quick test_triangle_freeness;
    Alcotest.test_case "colors" `Quick test_colors_in_eval;
    Alcotest.test_case "holds_tuple" `Quick test_holds_tuple;
    Alcotest.test_case "answers" `Quick test_answers;
    Alcotest.test_case "implies/iff" `Quick test_implies_iff_eval;
    QCheck_alcotest.to_alcotest eval_agrees_with_answers;
  ]
