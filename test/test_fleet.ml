(* Tests for folearn.fleet: the fault-tolerant multi-process sharding
   layer.

   - a QCheck lease codec round-trip (decode . encode = id) plus
     rejection of corrupted bytes and a bad magic;
   - claim atomicity: racing claimants (1, 2 and 4 domains) on the
     same chunk set, exactly one winner per chunk;
   - lease lifecycle: renew pushes the deadline, release is
     ownership-checked;
   - coordinator expiry: a dead claimant's expired lease returns the
     chunk to the pool under a bumped fence within the heartbeat;
   - fencing: a publish carrying a stale fence token is rejected (and
     removed) without corrupting the merged best. *)

module Fl = Fleet
module Lease = Fleet.Lease

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let temp_dir () =
  let path =
    Filename.temp_file "folearn_fleet_test" ""
  in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Lease codec                                                         *)
(* ------------------------------------------------------------------ *)

let lease_arb =
  let open QCheck in
  let gen =
    let open Gen in
    let* chunk = 0 -- 10_000 in
    let* lo = 0 -- 1_000_000 in
    let* span = 0 -- 4096 in
    let* worker = string_size ~gen:printable (0 -- 24) in
    let* pid = 1 -- 4_194_304 in
    let* fence = 0 -- 1000 in
    let* deadline = float_range (-1e9) 1e9 in
    return
      { Lease.chunk; lo; hi = lo + span; worker; pid; fence; deadline }
  in
  let print l = Lease.encode l in
  QCheck.make ~print gen

let prop_lease_roundtrip =
  QCheck.Test.make ~name:"lease codec round-trip" ~count:300 lease_arb
    (fun l -> Lease.decode (Lease.encode l) = Ok l)

let test_lease_rejects_corruption () =
  let l =
    {
      Lease.chunk = 3; lo = 30; hi = 40; worker = "w1"; pid = 123; fence = 2;
      deadline = 99.5;
    }
  in
  let enc = Lease.encode l in
  (* flip one body byte: CRC must catch it *)
  let b = Bytes.of_string enc in
  let i = String.length enc - 3 in
  Bytes.set b i (if Bytes.get b i = 'x' then 'y' else 'x');
  (match Lease.decode (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted lease must not decode");
  (match Lease.decode ("WRONGMAGIC " ^ enc) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic must not decode");
  match Lease.decode (String.sub enc 0 (String.length enc / 2)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated lease must not decode"

(* ------------------------------------------------------------------ *)
(* Claim atomicity                                                     *)
(* ------------------------------------------------------------------ *)

let mk_lease ~chunk ~worker ~fence ~deadline =
  {
    Lease.chunk;
    lo = chunk * 10;
    hi = (chunk + 1) * 10;
    worker;
    pid = Unix.getpid ();
    fence;
    deadline;
  }

(* [jobs] domains race to claim every chunk; each chunk must be won
   exactly once, and the file on disk must carry the winner's id *)
let claim_race ~jobs () =
  with_dir @@ fun dir ->
  let chunks = 8 in
  let wins = Array.init jobs (fun _ -> Array.make chunks false) in
  let barrier = Atomic.make 0 in
  let racer j () =
    Atomic.incr barrier;
    while Atomic.get barrier < jobs do
      Domain.cpu_relax ()
    done;
    for c = 0 to chunks - 1 do
      let l =
        mk_lease ~chunk:c
          ~worker:("w" ^ string_of_int j)
          ~fence:0
          ~deadline:(Unix.gettimeofday () +. 60.0)
      in
      if Lease.claim ~path:(Filename.concat dir (Printf.sprintf "%d.lease" c)) l
      then wins.(j).(c) <- true
    done
  in
  let doms = List.init jobs (fun j -> Domain.spawn (racer j)) in
  List.iter Domain.join doms;
  for c = 0 to chunks - 1 do
    let winners =
      List.length
        (List.filter Fun.id (List.init jobs (fun j -> wins.(j).(c))))
    in
    check_int (Printf.sprintf "chunk %d claimed exactly once" c) 1 winners;
    (* the file records the winner *)
    match Lease.load (Filename.concat dir (Printf.sprintf "%d.lease" c)) with
    | Ok l ->
        let j = int_of_string (String.sub l.Lease.worker 1 1) in
        check (Printf.sprintf "chunk %d file matches winner" c) true
          wins.(j).(c)
    | Error _ -> Alcotest.failf "chunk %d lease unreadable" c
  done

let test_renew_and_release () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "0.lease" in
  let mine = mk_lease ~chunk:0 ~worker:"w0" ~fence:0 ~deadline:10.0 in
  check "first claim wins" true (Lease.claim ~path mine);
  check "second claim loses" false
    (Lease.claim ~path (mk_lease ~chunk:0 ~worker:"w1" ~fence:0 ~deadline:10.0));
  Lease.renew ~path { mine with Lease.deadline = 99.0 };
  (match Lease.load path with
  | Ok l -> check "renew pushed the deadline" true (l.Lease.deadline = 99.0)
  | Error _ -> Alcotest.fail "renewed lease unreadable");
  (* someone else's release must not free my claim *)
  Lease.release ~path
    ~mine:(mk_lease ~chunk:0 ~worker:"w1" ~fence:0 ~deadline:10.0);
  check "foreign release is a no-op" true (Sys.file_exists path);
  Lease.release ~path ~mine:{ mine with Lease.deadline = 99.0 };
  check "owner release unlinks" false (Sys.file_exists path);
  check "released chunk is claimable again" true
    (Lease.claim ~path (mk_lease ~chunk:0 ~worker:"w2" ~fence:1 ~deadline:5.0))

(* ------------------------------------------------------------------ *)
(* Coordinator: expiry and fencing                                     *)
(* ------------------------------------------------------------------ *)

let meta_for dir ~total ~chunk_size ~heartbeat_s =
  let m =
    {
      Fl.Meta.run_id = "test-run";
      solver = "brute";
      total;
      chunk_size;
      heartbeat_s;
      max_attempts = 3;
      sample_size = 7;
    }
  in
  Fl.Layout.ensure dir;
  Fl.Meta.save ~dir m;
  m

let coord_cfg dir ~total ~chunk_size ~heartbeat_s =
  {
    Fl.c_dir = dir;
    c_run_id = "test-run";
    c_solver = "brute";
    c_total = total;
    c_chunk_size = chunk_size;
    c_heartbeat_s = heartbeat_s;
    c_max_attempts = 3;
    c_sample_size = 7;
    c_workers = 0;
    c_spawn = (fun _ -> Alcotest.fail "no workers should be spawned");
    c_backoff_base_s = 0.01;
    c_backoff_cap_s = 0.05;
  }

let stat outcome name =
  match List.assoc_opt name outcome.Fl.stats with
  | Some v -> v
  | None -> Alcotest.failf "missing stat %s" name

let wait_for ?(timeout_s = 10.0) what pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

(* A dead worker's lease must not survive past its heartbeat deadline:
   the coordinator reclaims the chunk under a bumped fence, and a
   publish under the new fence settles it. *)
let test_expiry_reclaims_dead_lease () =
  with_dir @@ fun dir ->
  let meta = meta_for dir ~total:4 ~chunk_size:2 ~heartbeat_s:0.1 in
  (* chunk 1 already settled; chunk 0 held by a dead claimant *)
  Fl.publish_done ~dir ~meta ~chunk:1 ~fence:0 ~best:(Some (2, 5));
  let dead =
    {
      Lease.chunk = 0; lo = 0; hi = 2; worker = "w-dead"; pid = 0; fence = 0;
      deadline = Unix.gettimeofday () -. 5.0;
    }
  in
  check "dead claim staged" true
    (Lease.claim ~path:(Fl.Layout.lease dir 0) dead);
  let cfg = coord_cfg dir ~total:4 ~chunk_size:2 ~heartbeat_s:0.1 in
  let coord = Domain.spawn (fun () -> Fl.coordinate cfg) in
  (* the expiry must land within ~one heartbeat: fence bumped, lease
     gone *)
  wait_for "lease expiry" (fun () ->
      (Fl.Fence.load dir 0).Fl.Fence.fence = 1
      && not (Sys.file_exists (Fl.Layout.lease dir 0)));
  Fl.publish_done ~dir ~meta ~chunk:0 ~fence:1 ~best:(Some (1, 3));
  (match Domain.join coord with
  | Error m -> Alcotest.failf "coordinate: %s" m
  | Ok out ->
      check_int "one lease expired" 1 (stat out "leases_expired");
      check_int "all candidates settled" 4 out.Fl.settled;
      check "lex-min best merged" true (out.Fl.best = Some (1, 3));
      check "no quarantine" true (out.Fl.quarantined = []));
  check "DONE marker written" true
    (Sys.file_exists (Fl.Layout.done_marker dir))

(* A publish carrying a stale fence token (from a worker that lost its
   lease but not its life) must be rejected and unlinked, never merged. *)
let test_stale_fence_publish_rejected () =
  with_dir @@ fun dir ->
  let meta = meta_for dir ~total:4 ~chunk_size:2 ~heartbeat_s:0.1 in
  (* the chunk's fence has moved on to 1; a zombie publishes a
     too-good-to-be-true result under fence 0 *)
  Fl.Fence.save dir 0 { Fl.Fence.fence = 1; attempts = 1; not_before = 0.0 };
  Fl.publish_done ~dir ~meta ~chunk:0 ~fence:0 ~best:(Some (0, 0));
  Fl.publish_done ~dir ~meta ~chunk:1 ~fence:0 ~best:(Some (3, 2));
  let cfg = coord_cfg dir ~total:4 ~chunk_size:2 ~heartbeat_s:0.1 in
  let coord = Domain.spawn (fun () -> Fl.coordinate cfg) in
  wait_for "stale publish rejection" (fun () ->
      not (Sys.file_exists (Fl.Layout.done_file dir 0)));
  Fl.publish_done ~dir ~meta ~chunk:0 ~fence:1 ~best:(Some (0, 4));
  match Domain.join coord with
  | Error m -> Alcotest.failf "coordinate: %s" m
  | Ok out ->
      check_int "one stale publish" 1 (stat out "stale_publishes");
      (* the zombie's (0, 0) must not have won *)
      check "merged best ignores the stale publish" true
        (out.Fl.best = Some (3, 2));
      check_int "all candidates settled" 4 out.Fl.settled

(* A failure report at the current fence retries with a bumped fence
   until max_attempts, then the chunk is quarantined and the run
   settles around it. *)
let test_failures_quarantine () =
  with_dir @@ fun dir ->
  let meta = meta_for dir ~total:4 ~chunk_size:2 ~heartbeat_s:0.1 in
  Fl.publish_done ~dir ~meta ~chunk:1 ~fence:0 ~best:(Some (2, 1));
  let cfg = coord_cfg dir ~total:4 ~chunk_size:2 ~heartbeat_s:0.1 in
  let coord = Domain.spawn (fun () -> Fl.coordinate cfg) in
  (* fail chunk 0 at every fence the coordinator offers *)
  for fence = 0 to 2 do
    wait_for
      (Printf.sprintf "fence %d open" fence)
      (fun () -> (Fl.Fence.load dir 0).Fl.Fence.fence = fence);
    Fl.publish_fail ~dir ~chunk:0 ~fence ~worker:"w-test" ~deterministic:false
      ~message:(Printf.sprintf "induced failure %d" fence)
  done;
  match Domain.join coord with
  | Error m -> Alcotest.failf "coordinate: %s" m
  | Ok out ->
      check_int "quarantined exactly one chunk" 1
        (List.length out.Fl.quarantined);
      (match out.Fl.quarantined with
      | [ q ] ->
          check_int "chunk id" 0 q.Fl.q_chunk;
          check_int "attempts" 3 q.Fl.q_attempts;
          check "last error recorded" true
            (q.Fl.q_error = "induced failure 2")
      | _ -> Alcotest.fail "expected one quarantined chunk");
      check_int "two retries before quarantine" 2
        (stat out "failures_retried");
      check_int "settled candidates exclude the poisoned chunk" 2
        out.Fl.settled;
      check "best survives" true (out.Fl.best = Some (2, 1));
      check "poison file written" true
        (Sys.file_exists (Fl.Layout.poison_file dir 0))

(* ------------------------------------------------------------------ *)
(* Chaos spec parsing                                                  *)
(* ------------------------------------------------------------------ *)

let test_parse_chaos () =
  check "poison+flaky" true
    (Fl.parse_chaos "poison:3,flaky:1:2"
    = Ok [ Fl.Poison 3; Fl.Flaky (1, 2) ]);
  check "empty spec" true (Fl.parse_chaos "" = Ok []);
  (match Fl.parse_chaos "poison:x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad chunk id must not parse");
  match Fl.parse_chaos "unknown:1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown term must not parse"

let suite =
  [
    QCheck_alcotest.to_alcotest prop_lease_roundtrip;
    Alcotest.test_case "lease rejects corruption" `Quick
      test_lease_rejects_corruption;
    Alcotest.test_case "claim race, 1 domain" `Quick (claim_race ~jobs:1);
    Alcotest.test_case "claim race, 2 domains" `Quick (claim_race ~jobs:2);
    Alcotest.test_case "claim race, 4 domains" `Quick (claim_race ~jobs:4);
    Alcotest.test_case "renew and ownership-checked release" `Quick
      test_renew_and_release;
    Alcotest.test_case "expiry reclaims a dead lease" `Quick
      test_expiry_reclaims_dead_lease;
    Alcotest.test_case "stale fence publish rejected" `Quick
      test_stale_fence_publish_rejected;
    Alcotest.test_case "repeated failures quarantine" `Quick
      test_failures_quarantine;
    Alcotest.test_case "chaos spec parsing" `Quick test_parse_chaos;
  ]
