(* Tests for the FO substrate: syntax, parser, localisation, Gaifman. *)

module F = Fo.Formula

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let phi_example =
  (* exists z. E(x, z) /\ Red(z) *)
  F.exists "z" (F.and_ [ F.edge "x" "z"; F.color "Red" "z" ])

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)
(* ------------------------------------------------------------------ *)

let test_smart_and () =
  check "empty and is true" true (F.and_ [] = F.tru);
  check "and with false collapses" true (F.and_ [ F.eq "x" "y"; F.fls ] = F.fls);
  check "and flattens" true
    (F.and_ [ F.and_ [ F.eq "x" "y"; F.eq "y" "z" ]; F.eq "x" "z" ]
    = F.And [ F.eq "x" "y"; F.eq "y" "z"; F.eq "x" "z" ]);
  check "singleton unwraps" true (F.and_ [ F.eq "x" "y" ] = F.eq "x" "y")

let test_smart_or () =
  check "empty or is false" true (F.or_ [] = F.fls);
  check "or with true collapses" true (F.or_ [ F.eq "x" "y"; F.tru ] = F.tru);
  check "true units dropped in and" true (F.and_ [ F.tru; F.eq "x" "y" ] = F.eq "x" "y")

let test_smart_not () =
  check "double negation" true (F.not_ (F.not_ (F.eq "x" "y")) = F.eq "x" "y");
  check "not true" true (F.not_ F.tru = F.fls)

let test_smart_quantifiers () =
  check "exists false" true (F.exists "x" F.fls = F.fls);
  check "forall true" true (F.forall "x" F.tru = F.tru);
  check "exists_many" true
    (F.exists_many [ "a"; "b" ] F.(eq "a" "b")
    = F.Exists ("a", F.Exists ("b", F.eq "a" "b")))

let test_implies_iff () =
  check "false implies" true (F.implies F.fls (F.eq "x" "y") = F.tru);
  check "implies false is negation" true
    (F.implies (F.eq "x" "y") F.fls = F.not_ (F.eq "x" "y"));
  check "iff true unit" true (F.iff F.tru (F.eq "x" "y") = F.eq "x" "y")

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)
(* ------------------------------------------------------------------ *)

let test_quantifier_rank () =
  check_int "atom" 0 (F.quantifier_rank (F.eq "x" "y"));
  check_int "one" 1 (F.quantifier_rank phi_example);
  check_int "nested" 2
    (F.quantifier_rank (F.forall "w" phi_example));
  check_int "parallel takes max" 1
    (F.quantifier_rank (F.and_ [ phi_example; F.exists "u" (F.eq "u" "u") ]))

let test_free_vars () =
  Alcotest.(check (list string)) "free vars" [ "x" ] (F.free_vars phi_example);
  Alcotest.(check (list string))
    "bound removed" []
    (F.free_vars (F.exists "x" phi_example));
  Alcotest.(check (list string))
    "all vars" [ "x"; "z" ] (F.all_vars phi_example)

let test_colors_used () =
  Alcotest.(check (list string)) "colors" [ "Red" ] (F.colors_used phi_example)

let test_size () =
  check "atom size 1" true (F.size (F.eq "x" "y") = 1);
  check "structure counted" true (F.size phi_example >= 4)

(* ------------------------------------------------------------------ *)
(* Substitution and renaming                                           *)
(* ------------------------------------------------------------------ *)

let test_substitute_free () =
  let f = F.substitute [ ("x", "u") ] phi_example in
  Alcotest.(check (list string)) "renamed free var" [ "u" ] (F.free_vars f)

let test_substitute_avoids_capture () =
  (* substituting x := z into exists z. E(x,z) must refresh the binder *)
  let f = F.substitute [ ("x", "z") ] phi_example in
  (* the free z must not be captured: semantics check via evaluation *)
  Alcotest.(check (list string)) "free var is z" [ "z" ] (F.free_vars f);
  match f with
  | F.Exists (b, _) -> check "binder refreshed" true (b <> "z")
  | _ -> Alcotest.fail "expected an existential"

let test_substitute_bound_untouched () =
  let f = F.substitute [ ("z", "w") ] phi_example in
  check "bound occurrence untouched" true (f = phi_example)

let test_map_atoms () =
  let f =
    F.map_atoms
      (function
        | F.Edge (a, b) -> F.color "Q" b |> fun c -> F.and_ [ c; F.eq a a ]
        | a -> F.Atom a)
      phi_example
  in
  check "edge rewritten" true (F.colors_used f = [ "Q"; "Red" ])

(* ------------------------------------------------------------------ *)
(* Normal forms                                                        *)
(* ------------------------------------------------------------------ *)

let test_nnf () =
  let f = F.not_ (F.exists "z" (F.implies (F.edge "x" "z") (F.fls))) in
  let g = F.nnf f in
  let rec no_bad = function
    | F.Not (F.Atom _) | F.Atom _ | F.True | F.False -> true
    | F.Not (F.CountGe (_, _, f)) -> no_bad f (* counting has no dual *)
    | F.Not _ -> false
    | F.Implies _ | F.Iff _ -> false
    | F.And fs | F.Or fs -> List.for_all no_bad fs
    | F.Exists (_, f) | F.Forall (_, f) | F.CountGe (_, _, f) -> no_bad f
  in
  check "nnf shape" true (no_bad g);
  check "rank preserved" true (F.quantifier_rank g = F.quantifier_rank f)

let test_simplify () =
  check "x = x folds" true (F.simplify (F.eq "x" "x") = F.tru);
  check "dedup juncts" true
    (F.simplify (F.And [ F.eq "x" "y"; F.eq "x" "y" ]) = F.eq "x" "y");
  check "vacuous quantifier dropped" true
    (F.simplify (F.Exists ("w", F.eq "x" "y")) = F.eq "x" "y")

let test_fresh_var () =
  check_str "fresh avoids" "x0" (F.fresh_var ~avoid:[ "x" ] "x");
  check_str "fresh keeps free name" "y" (F.fresh_var ~avoid:[ "x" ] "y")

(* ------------------------------------------------------------------ *)
(* Parser round-trips                                                  *)
(* ------------------------------------------------------------------ *)

let test_parse_atoms () =
  check "eq" true (Fo.Parser.parse "x = y" = F.eq "x" "y");
  check "neq" true (Fo.Parser.parse "x != y" = F.not_ (F.eq "x" "y"));
  check "edge" true (Fo.Parser.parse "E(x, y)" = F.edge "x" "y");
  check "color" true (Fo.Parser.parse "Red(x)" = F.color "Red" "x");
  check "true" true (Fo.Parser.parse "true" = F.tru)

let test_parse_precedence () =
  check "and binds tighter than or" true
    (Fo.Parser.parse "a = b \\/ c = d /\\ e = f"
    = F.or_ [ F.eq "a" "b"; F.and_ [ F.eq "c" "d"; F.eq "e" "f" ] ]);
  check "implies right assoc" true
    (Fo.Parser.parse "a = b -> c = d -> e = f"
    = F.implies (F.eq "a" "b") (F.implies (F.eq "c" "d") (F.eq "e" "f")));
  check "negation tight" true
    (Fo.Parser.parse "~ a = b /\\ c = d"
    = F.and_ [ F.not_ (F.eq "a" "b"); F.eq "c" "d" ])

let test_parse_quantifiers () =
  check "multi-binder" true
    (Fo.Parser.parse "exists x y. E(x, y)"
    = F.exists "x" (F.exists "y" (F.edge "x" "y")));
  check "body extends right" true
    (Fo.Parser.parse "forall x. Red(x) \\/ Blue(x)"
    = F.forall "x" (F.or_ [ F.color "Red" "x"; F.color "Blue" "x" ]))

let test_parse_errors () =
  check "unbalanced" true (Fo.Parser.parse_opt "(x = y" = None);
  check "missing dot" true (Fo.Parser.parse_opt "exists x E(x, x)" = None);
  check "binary non-E" true (Fo.Parser.parse_opt "R(x, y)" = None);
  check "unary E" true (Fo.Parser.parse_opt "E(x)" = None);
  check "trailing garbage" true (Fo.Parser.parse_opt "x = y y" = None)

(* random formula generator for round-trip and semantics properties *)
let rec gen_formula vars depth st =
  let pick l = List.nth l (Random.State.int st (List.length l)) in
  let var () = pick vars in
  if depth = 0 || Random.State.int st 3 = 0 then
    match Random.State.int st 4 with
    | 0 -> F.eq (var ()) (var ())
    | 1 -> F.edge (var ()) (var ())
    | 2 -> F.color (pick [ "Red"; "Blue" ]) (var ())
    | _ -> if Random.State.bool st then F.True else F.False
  else begin
    match Random.State.int st 6 with
    | 0 -> F.Not (gen_formula vars (depth - 1) st)
    | 1 ->
        F.And
          [ gen_formula vars (depth - 1) st; gen_formula vars (depth - 1) st ]
    | 2 ->
        F.Or
          [ gen_formula vars (depth - 1) st; gen_formula vars (depth - 1) st ]
    | 3 ->
        F.Implies
          (gen_formula vars (depth - 1) st, gen_formula vars (depth - 1) st)
    | 4 ->
        let v = Printf.sprintf "b%d" (Random.State.int st 3) in
        F.Exists (v, gen_formula (v :: vars) (depth - 1) st)
    | _ ->
        let v = Printf.sprintf "b%d" (Random.State.int st 3) in
        F.Forall (v, gen_formula (v :: vars) (depth - 1) st)
  end

let parser_roundtrip =
  QCheck.Test.make ~name:"pp then parse is semantically faithful" ~count:120
    QCheck.(int_range 0 10000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let f = gen_formula [ "x"; "y" ] 4 st in
      match Fo.Parser.parse_opt (F.to_string f) with
      | None -> false
      | Some g ->
          (* parsing normalises through the smart constructors; compare
             semantically on a fixed small graph *)
          let graph =
            Cgraph.Graph.create ~n:4
              ~edges:[ (0, 1); (1, 2); (2, 3) ]
              ~colors:[ ("Red", [ 0; 2 ]); ("Blue", [ 1 ]) ]
          in
          List.for_all
            (fun vx ->
              List.for_all
                (fun vy ->
                  let env = [ ("x", vx); ("y", vy) ] in
                  Modelcheck.Eval.holds graph env f
                  = Modelcheck.Eval.holds graph env g)
                [ 0; 1; 2; 3 ])
            [ 0; 1; 2; 3 ])

(* Genform builds through the same smart constructors the parser
   normalises with, so on that class the round-trip is exact structural
   identity, not just semantic equivalence. *)
let parser_exact_roundtrip =
  QCheck.Test.make ~name:"parse . pp = id over Genform" ~count:300
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let f = Fo.Genform.formula ~seed () in
      Fo.Parser.parse_opt (F.to_string f) = Some f)

let parser_exact_roundtrip_counting =
  QCheck.Test.make ~name:"parse . pp = id over counting Genform" ~count:300
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let config = { Fo.Genform.default with allow_counting = true } in
      let f = Fo.Genform.formula ~config ~seed () in
      Fo.Parser.parse_opt (F.to_string f) = Some f)

let nnf_preserves_semantics =
  QCheck.Test.make ~name:"nnf and simplify preserve semantics" ~count:120
    QCheck.(int_range 0 10000)
    (fun seed ->
      let st = Random.State.make [| seed + 777 |] in
      let f = gen_formula [ "x"; "y" ] 4 st in
      let graph =
        Cgraph.Graph.create ~n:4
          ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0) ]
          ~colors:[ ("Red", [ 1; 3 ]); ("Blue", [ 0 ]) ]
      in
      List.for_all
        (fun vx ->
          List.for_all
            (fun vy ->
              let env = [ ("x", vx); ("y", vy) ] in
              let base = Modelcheck.Eval.holds graph env f in
              Modelcheck.Eval.holds graph env (F.nnf f) = base
              && Modelcheck.Eval.holds graph env (F.simplify f) = base)
            [ 0; 2 ])
        [ 1; 3 ])

(* ------------------------------------------------------------------ *)
(* Localisation                                                        *)
(* ------------------------------------------------------------------ *)

let test_dist_le_semantics () =
  let g = Cgraph.Gen.path 8 in
  List.iter
    (fun d ->
      let f = Fo.Localize.dist_le ~d "x" "y" in
      List.iter
        (fun u ->
          List.iter
            (fun v ->
              let expected = Cgraph.Bfs.dist g u v <= d in
              let got =
                Modelcheck.Eval.holds g [ ("x", u); ("y", v) ] f
              in
              if got <> expected then
                Alcotest.failf "dist_le %d wrong at (%d,%d)" d u v)
            [ 0; 3; 7 ])
        [ 0; 2; 5 ])
    [ 0; 1; 2; 3; 5 ]

let test_dist_le_rank () =
  check_int "d=1 rank 0" 0 (F.quantifier_rank (Fo.Localize.dist_le ~d:1 "x" "y"));
  check_int "d=2 rank 1" 1 (F.quantifier_rank (Fo.Localize.dist_le ~d:2 "x" "y"));
  check_int "d=4 rank 2" 2 (F.quantifier_rank (Fo.Localize.dist_le ~d:4 "x" "y"));
  check "d=8 rank 3" true
    (F.quantifier_rank (Fo.Localize.dist_le ~d:8 "x" "y") = 3)

let test_relativize_local () =
  (* "x has a neighbour that is Red" is 1-local; its relativisation to
     r=1 must agree with evaluation in the induced 1-ball *)
  let f = F.exists "z" (F.and_ [ F.edge "x" "z"; F.color "Red" "z" ]) in
  let loc = Fo.Localize.relativize ~r:1 ~around:[ "x" ] f in
  let g =
    Cgraph.Graph.create ~n:6
      ~edges:[ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) ]
      ~colors:[ ("Red", [ 2; 5 ]) ]
  in
  List.iter
    (fun v ->
      let emb = Cgraph.Ops.neighborhood g ~r:1 [| v |] in
      let v' = Option.get (emb.Cgraph.Ops.to_sub v) in
      let expected = Modelcheck.Eval.holds emb.Cgraph.Ops.graph [ ("x", v') ] f in
      let got = Modelcheck.Eval.holds g [ ("x", v) ] loc in
      if got <> expected then Alcotest.failf "relativize wrong at %d" v)
    (Cgraph.Graph.vertices g)

let relativize_is_local =
  QCheck.Test.make
    ~name:"relativised formulas depend only on the r-neighbourhood" ~count:60
    QCheck.(pair (int_range 0 10000) (int_range 1 2))
    (fun (seed, r) ->
      let st = Random.State.make [| seed; r |] in
      let f = gen_formula [ "x" ] 3 st in
      let loc = Fo.Localize.relativize ~r ~around:[ "x" ] f in
      let g =
        Cgraph.Gen.colored ~seed ~colors:[ "Red"; "Blue" ]
          (Cgraph.Gen.random_tree ~seed:(seed + 1) 12)
      in
      List.for_all
        (fun v ->
          let emb = Cgraph.Ops.neighborhood g ~r [| v |] in
          let v' = Option.get (emb.Cgraph.Ops.to_sub v) in
          Modelcheck.Eval.holds g [ ("x", v) ] loc
          = Modelcheck.Eval.holds emb.Cgraph.Ops.graph [ ("x", v') ] loc)
        [ 0; 5; 11 ])

let test_gaifman_radius () =
  check_int "r(0)" 0 (Fo.Gaifman.radius 0);
  check_int "r(1)" 3 (Fo.Gaifman.radius 1);
  check_int "r(2)" 24 (Fo.Gaifman.radius 2);
  check "overflow guarded" true
    (try
       ignore (Fo.Gaifman.radius 25);
       false
     with Invalid_argument _ -> true)

let test_rank_overhead () =
  check_int "r<=1 free" 0 (Fo.Gaifman.rank_overhead 1);
  check_int "r=2" 1 (Fo.Gaifman.rank_overhead 2);
  check_int "r=3" 2 (Fo.Gaifman.rank_overhead 3);
  check_int "r=8" 3 (Fo.Gaifman.rank_overhead 8)

let suite =
  [
    Alcotest.test_case "smart and" `Quick test_smart_and;
    Alcotest.test_case "smart or" `Quick test_smart_or;
    Alcotest.test_case "smart not" `Quick test_smart_not;
    Alcotest.test_case "smart quantifiers" `Quick test_smart_quantifiers;
    Alcotest.test_case "implies iff" `Quick test_implies_iff;
    Alcotest.test_case "quantifier rank" `Quick test_quantifier_rank;
    Alcotest.test_case "free vars" `Quick test_free_vars;
    Alcotest.test_case "colors used" `Quick test_colors_used;
    Alcotest.test_case "size" `Quick test_size;
    Alcotest.test_case "substitute free" `Quick test_substitute_free;
    Alcotest.test_case "substitute avoids capture" `Quick
      test_substitute_avoids_capture;
    Alcotest.test_case "substitute bound untouched" `Quick
      test_substitute_bound_untouched;
    Alcotest.test_case "map atoms" `Quick test_map_atoms;
    Alcotest.test_case "nnf" `Quick test_nnf;
    Alcotest.test_case "simplify" `Quick test_simplify;
    Alcotest.test_case "fresh var" `Quick test_fresh_var;
    Alcotest.test_case "parse atoms" `Quick test_parse_atoms;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse quantifiers" `Quick test_parse_quantifiers;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "dist_le semantics" `Quick test_dist_le_semantics;
    Alcotest.test_case "dist_le rank" `Quick test_dist_le_rank;
    Alcotest.test_case "relativize local" `Quick test_relativize_local;
    Alcotest.test_case "gaifman radius" `Quick test_gaifman_radius;
    Alcotest.test_case "rank overhead" `Quick test_rank_overhead;
    QCheck_alcotest.to_alcotest parser_roundtrip;
    QCheck_alcotest.to_alcotest parser_exact_roundtrip;
    QCheck_alcotest.to_alcotest parser_exact_roundtrip_counting;
    QCheck_alcotest.to_alcotest nnf_preserves_semantics;
    QCheck_alcotest.to_alcotest relativize_is_local;
  ]
