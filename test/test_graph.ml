(* Unit and property tests for the coloured-graph substrate. *)

open Cgraph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let p5 = Gen.path 5
let c6 = Gen.cycle 6
let k4 = Gen.clique 4

let coloured_triangle =
  Graph.create ~n:3
    ~edges:[ (0, 1); (1, 2); (2, 0) ]
    ~colors:[ ("Red", [ 0 ]); ("Blue", [ 1; 2 ]) ]

(* ------------------------------------------------------------------ *)
(* Graph construction                                                  *)
(* ------------------------------------------------------------------ *)

let test_create_basic () =
  check_int "order" 5 (Graph.order p5);
  check_int "size" 4 (Graph.size p5);
  check "edge 0-1" true (Graph.mem_edge p5 0 1);
  check "edge symmetric" true (Graph.mem_edge p5 1 0);
  check "no edge 0-2" false (Graph.mem_edge p5 0 2);
  check_int "degree endpoint" 1 (Graph.degree p5 0);
  check_int "degree inner" 2 (Graph.degree p5 2);
  check_int "max degree" 2 (Graph.max_degree p5)

let test_create_dedup () =
  let g = Graph.create ~n:3 ~edges:[ (0, 1); (1, 0); (0, 1) ] ~colors:[] in
  check_int "duplicate edges merged" 1 (Graph.size g)

let test_create_rejects_self_loop () =
  Alcotest.check_raises "self-loop" (Invalid_argument "Graph.create: self-loop")
    (fun () -> ignore (Graph.create ~n:2 ~edges:[ (1, 1) ] ~colors:[]))

let test_create_rejects_bad_vertex () =
  check "raises" true
    (try
       ignore (Graph.create ~n:2 ~edges:[ (0, 5) ] ~colors:[]);
       false
     with Graph.Invalid_vertex 5 -> true)

let test_colors () =
  check "has Red" true (Graph.has_color coloured_triangle "Red" 0);
  check "not Red" false (Graph.has_color coloured_triangle "Red" 1);
  check "unknown colour" false (Graph.has_color coloured_triangle "Green" 0);
  Alcotest.(check (list string))
    "colors_of" [ "Blue" ]
    (Graph.colors_of coloured_triangle 1);
  Alcotest.(check (list int))
    "colour class" [ 1; 2 ]
    (Graph.color_class coloured_triangle "Blue");
  Alcotest.(check (list string))
    "names" [ "Blue"; "Red" ]
    (Graph.color_names coloured_triangle)

let test_with_colors () =
  let g = Graph.with_colors p5 [ ("Mark", [ 0; 4 ]) ] in
  check "expansion holds" true (Graph.has_color g "Mark" 4);
  check "original unchanged" false (Graph.has_color p5 "Mark" 4);
  check "edges preserved" true (Graph.mem_edge g 2 3);
  Alcotest.check_raises "duplicate colour rejected"
    (Invalid_argument "Graph.with_colors: colour \"Mark\" already present")
    (fun () -> ignore (Graph.with_colors g [ ("Mark", []) ]))

let test_restrict_vocabulary () =
  let g = Graph.restrict_vocabulary coloured_triangle [ "Red" ] in
  Alcotest.(check (list string)) "only Red" [ "Red" ] (Graph.color_names g);
  check "Blue gone" false (Graph.has_color g "Blue" 1)

let test_equal () =
  check "reflexive" true (Graph.equal p5 (Gen.path 5));
  check "different order" false (Graph.equal p5 (Gen.path 4));
  check "colour matters" false
    (Graph.equal coloured_triangle
       (Graph.create ~n:3 ~edges:[ (0, 1); (1, 2); (2, 0) ] ~colors:[]))

let test_edges_sorted () =
  Alcotest.(check (list (pair int int)))
    "edge list" [ (0, 1); (1, 2); (2, 3); (3, 4) ] (Graph.edges p5)

let test_to_dot () =
  let dot = Graph.to_dot ~name:"T" coloured_triangle in
  check "has header" true (String.length dot > 0 && String.sub dot 0 7 = "graph T");
  check "mentions an edge" true
    (let rec contains_sub i =
       i + 10 <= String.length dot
       && (String.sub dot i 10 = "v0 -- v1;\n" || contains_sub (i + 1))
     in
     contains_sub 0)

let test_of_adjacency () =
  let g = Ops.induced p5 [ 0; 1; 2 ] in
  ignore g;
  let g2 = Graph.of_adjacency [| [ 1 ]; [ 0; 2 ]; [] |] [] in
  check "symmetrised" true (Graph.mem_edge g2 2 1);
  check_int "order" 3 (Graph.order g2)

(* ------------------------------------------------------------------ *)
(* Tuples                                                              *)
(* ------------------------------------------------------------------ *)

let test_tuple_all () =
  check_int "n^k tuples" 9 (List.length (Graph.Tuple.all ~n:3 ~k:2));
  check_int "k=0" 1 (List.length (Graph.Tuple.all ~n:3 ~k:0));
  Alcotest.(check (list (list int)))
    "lexicographic" [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ]
    (List.map Array.to_list (Graph.Tuple.all ~n:2 ~k:2))

let test_tuple_append () =
  Alcotest.(check (list int))
    "append" [ 1; 2; 3 ]
    (Array.to_list (Graph.Tuple.append [| 1; 2 |] [| 3 |]))

(* ------------------------------------------------------------------ *)
(* BFS                                                                 *)
(* ------------------------------------------------------------------ *)

let test_distances () =
  let d = Bfs.distances p5 0 in
  Alcotest.(check (list int)) "path distances" [ 0; 1; 2; 3; 4 ]
    (Array.to_list d);
  check_int "pairwise" 3 (Bfs.dist c6 0 3);
  check_int "cycle wraps" 1 (Bfs.dist c6 0 5)

let test_unreachable () =
  let g = Graph.create ~n:4 ~edges:[ (0, 1) ] ~colors:[] in
  check "unreachable" true (Bfs.dist g 0 3 = Bfs.infinity);
  check "within false" false (Bfs.within g ~r:10 0 3);
  check "within true" true (Bfs.within g ~r:1 0 1)

let test_multi_source () =
  let d = Bfs.distances_multi p5 [ 0; 4 ] in
  Alcotest.(check (list int)) "from both ends" [ 0; 1; 2; 1; 0 ]
    (Array.to_list d)

let test_ball () =
  Alcotest.(check (list int)) "r=1 ball" [ 1; 2; 3 ] (Bfs.ball p5 ~r:1 [ 2 ]);
  Alcotest.(check (list int))
    "tuple ball" [ 0; 1; 3; 4 ]
    (Bfs.ball_tuple p5 ~r:1 [| 0; 4 |]);
  check_int "eccentricity of end" 4 (Bfs.eccentricity p5 0);
  check_int "eccentricity of middle" 2 (Bfs.eccentricity p5 2)

let test_dist_tuple () =
  check_int "tuple-tuple" 1 (Bfs.dist_tuple p5 [| 0 |] [| 1; 4 |]);
  check "empty tuple" true (Bfs.dist_tuple p5 [||] [| 1 |] = Bfs.infinity)

let test_dist_swaps_to_lower_degree () =
  (* a star (hub 0, 20 leaves) with a pendant path 0-21-22-23: a BFS
     from the tail reaches the hub after 3 dequeues, a BFS from the hub
     must drain ~n frontier vertices first.  [dist] promises to start
     from the lower-degree endpoint, so both argument orders must cost
     a small, hub-independent number of fuel ticks. *)
  let edges =
    (0, 21) :: (21, 22) :: (22, 23) :: List.init 20 (fun i -> (0, i + 1))
  in
  let g = Graph.create ~n:24 ~edges ~colors:[] in
  let fuel_of u v =
    let budget = Guard.Budget.unlimited () in
    (match
       Guard.run ~budget ~salvage:(fun () -> None) (fun () -> Bfs.dist g u v)
     with
    | Guard.Complete d -> check_int "dist" 3 d
    | Guard.Exhausted _ -> Alcotest.fail "unlimited budget tripped");
    (Guard.Budget.spent budget).Guard.fuel
  in
  check "hub->tail searches from the tail" true (fuel_of 0 23 <= 5);
  check "tail->hub searches from the tail" true (fuel_of 23 0 <= 5)

let test_tuple_count_of_index () =
  check "count 3^2" true (Graph.Tuple.count ~n:3 ~k:2 = Some 9);
  check "count overflows to None" true
    (Graph.Tuple.count ~n:max_int ~k:2 = None);
  check "count k=0" true (Graph.Tuple.count ~n:5 ~k:0 = Some 1);
  (* of_index must enumerate in exactly the iter_all order *)
  let n = 3 and k = 2 in
  let expected = Graph.Tuple.all ~n ~k in
  List.iteri
    (fun i t ->
      check "of_index matches iter_all order" true
        (Graph.Tuple.of_index ~n ~k i = t))
    expected

(* ------------------------------------------------------------------ *)
(* Ops                                                                 *)
(* ------------------------------------------------------------------ *)

let test_induced () =
  let emb = Ops.induced c6 [ 0; 1; 2 ] in
  check_int "order" 3 (Graph.order emb.Ops.graph);
  check_int "edges (path through cycle)" 2 (Graph.size emb.Ops.graph);
  check "mapping round-trip" true
    (List.for_all
       (fun v -> emb.Ops.to_sub (emb.Ops.of_sub v) = Some v)
       (Graph.vertices emb.Ops.graph));
  check "outside maps to None" true (emb.Ops.to_sub 5 = None)

let test_induced_colors () =
  let emb = Ops.induced coloured_triangle [ 1; 2 ] in
  check "colour restricted" true
    (List.for_all
       (fun v -> Graph.has_color emb.Ops.graph "Blue" v)
       (Graph.vertices emb.Ops.graph));
  Alcotest.(check (list int)) "Red empty" []
    (Graph.color_class emb.Ops.graph "Red")

let test_neighborhood () =
  let emb = Ops.neighborhood p5 ~r:1 [| 2 |] in
  check_int "N_1(2) has 3 vertices" 3 (Graph.order emb.Ops.graph)

let test_disjoint_union () =
  let u, inj = Ops.disjoint_union [ p5; c6 ] in
  check_int "order adds" 11 (Graph.order u);
  check_int "size adds" 10 (Graph.size u);
  check "no cross edges" false (Graph.mem_edge u (inj 0 4) (inj 1 0));
  check "second copy edges" true (Graph.mem_edge u (inj 1 0) (inj 1 5))

let test_copies_merge_colors () =
  let g, inj = Ops.copies coloured_triangle 2 in
  check "colour in both copies" true
    (Graph.has_color g "Red" (inj 0 0) && Graph.has_color g "Red" (inj 1 0));
  check_int "order" 6 (Graph.order g)

let test_delete_edges_at () =
  let g = Ops.delete_edges_at c6 [ 0 ] in
  check_int "two edges gone" 4 (Graph.size g);
  check_int "vertex kept" 6 (Graph.order g);
  check "isolated now" true (Graph.degree g 0 = 0)

let test_add_isolated () =
  let g, fresh = Ops.add_isolated p5 [ [ "T1" ]; [ "T2"; "T1" ] ] in
  check_int "two fresh" 2 (List.length fresh);
  check_int "order grows" 7 (Graph.order g);
  check "fresh coloured" true (Graph.has_color g "T2" (List.nth fresh 1));
  check "fresh isolated" true (Graph.degree g (List.hd fresh) = 0)

let test_subgraph_of () =
  check "larger graph is not a subgraph" true
    (Ops.subgraph_of (Gen.path 7) c6 = false);
  check "path 6 embeds in cycle 6 under identity" true
    (Ops.subgraph_of (Gen.path 6) c6);
  check "prefix induced is subgraph" true
    (Ops.subgraph_of (Ops.induced c6 [ 0; 1; 2 ]).Ops.graph c6)

(* ------------------------------------------------------------------ *)
(* Generators and invariants                                           *)
(* ------------------------------------------------------------------ *)

let test_generators () =
  check_int "grid order" 12 (Graph.order (Gen.grid 4 3));
  check_int "grid size" 17 (Graph.size (Gen.grid 4 3));
  check_int "clique size" 6 (Graph.size k4);
  check_int "star size" 5 (Graph.size (Gen.star 6));
  check_int "binary tree depth 3" 15 (Graph.order (Gen.complete_binary_tree 3));
  let t = Gen.random_tree ~seed:1 20 in
  check_int "tree size" 19 (Graph.size t);
  check "tree is forest" true (Invariants.is_forest t);
  let b = Gen.random_bounded_degree ~seed:2 ~n:30 ~d:3 in
  check "degree bound respected" true (Graph.max_degree b <= 3)

let test_ktree () =
  let g = Gen.ktree ~seed:3 ~k:2 ~n:20 in
  check_int "order" 20 (Graph.order g);
  (* a 2-tree on n vertices has 2n - 3 edges *)
  check_int "edge count" (2 * 20 - 3) (Graph.size g);
  (* degeneracy of a k-tree is exactly k *)
  check_int "degeneracy" 2 (Invariants.degeneracy g);
  check "connected" true (Invariants.is_connected g);
  let p = Gen.partial_ktree ~seed:4 ~k:2 ~n:20 ~keep:0.6 in
  check "partial has fewer edges" true (Graph.size p <= Graph.size g);
  check "partial degeneracy bounded" true (Invariants.degeneracy p <= 2)

let test_empty_and_tiny_graphs () =
  let empty = Graph.create ~n:0 ~edges:[] ~colors:[] in
  check_int "empty order" 0 (Graph.order empty);
  check "no vertices" true (Graph.vertices empty = []);
  check "empty components" true (Invariants.components empty = []);
  check_int "empty degeneracy" 0 (Invariants.degeneracy empty);
  check_int "empty diameter" 0 (Invariants.diameter empty);
  let single = Graph.create ~n:1 ~edges:[] ~colors:[ ("C", [ 0 ]) ] in
  check "single coloured" true (Graph.has_color single "C" 0);
  check_int "single ecc" 0 (Bfs.eccentricity single 0)

let test_generator_determinism () =
  check "same seed same graph" true
    (Graph.equal (Gen.gnp ~seed:5 ~n:12 ~p:0.3) (Gen.gnp ~seed:5 ~n:12 ~p:0.3));
  check "different seed differs" true
    (not (Graph.equal (Gen.gnp ~seed:5 ~n:12 ~p:0.3) (Gen.gnp ~seed:6 ~n:12 ~p:0.3)))

let test_colored_balanced () =
  let g = Gen.colored_balanced ~seed:3 ~colors:[ "A"; "B" ] (Gen.path 10) in
  let total =
    List.length (Graph.color_class g "A") + List.length (Graph.color_class g "B")
  in
  check_int "every vertex coloured once" 10 total

let test_components () =
  let g = Graph.create ~n:5 ~edges:[ (0, 1); (3, 4) ] ~colors:[] in
  Alcotest.(check (list (list int)))
    "components" [ [ 0; 1 ]; [ 2 ]; [ 3; 4 ] ] (Invariants.components g);
  check "not connected" false (Invariants.is_connected g);
  Alcotest.(check (list int)) "isolated" [ 2 ] (Invariants.isolated_vertices g)

let test_degeneracy () =
  check_int "path degeneracy" 1 (Invariants.degeneracy p5);
  check_int "cycle degeneracy" 2 (Invariants.degeneracy c6);
  check_int "clique degeneracy" 3 (Invariants.degeneracy k4);
  check_int "grid degeneracy" 2 (Invariants.degeneracy (Gen.grid 4 4))

let test_diameter () =
  check_int "path diameter" 4 (Invariants.diameter p5);
  check_int "cycle diameter" 3 (Invariants.diameter c6)

let test_treewidth_exact () =
  let tw g = Option.get (Invariants.treewidth_exact g) in
  check_int "path" 1 (tw (Gen.path 6));
  check_int "cycle" 2 (tw (Gen.cycle 6));
  check_int "clique" 4 (tw (Gen.clique 5));
  check_int "grid 3x4" 3 (tw (Gen.grid 3 4));
  check_int "2-tree" 2 (tw (Gen.ktree ~seed:1 ~k:2 ~n:12));
  check_int "3-tree" 3 (tw (Gen.ktree ~seed:2 ~k:3 ~n:10));
  check "cap respected" true (Invariants.treewidth_exact (Gen.path 20) = None)

let ktree_treewidth_property =
  QCheck.Test.make ~name:"random k-trees have treewidth exactly k" ~count:20
    QCheck.(pair (int_range 1 3) (int_range 0 400))
    (fun (k, seed) ->
      let g = Gen.ktree ~seed ~k ~n:(k + 2 + (seed mod 8)) in
      Invariants.treewidth_exact g = Some k)

let test_treedepth_bound () =
  check_int "single vertex" 1 (Invariants.treedepth_upper_bound (Gen.path 1));
  check "path td bound sane" true
    (Invariants.treedepth_upper_bound (Gen.path 7) <= 4);
  check "non-forest falls back" true
    (Invariants.treedepth_upper_bound c6 = 6)

(* ------------------------------------------------------------------ *)
(* Vitali covering (Lemma 3)                                           *)
(* ------------------------------------------------------------------ *)

let test_vitali_basic () =
  let xs = [ 0; 4; 9 ] in
  let g = Gen.path 10 in
  let c = Vitali.cover g ~r:1 xs in
  check "Lemma 3 conclusions" true (Vitali.check g ~r:1 xs c);
  check "centres from X" true (List.for_all (fun z -> List.mem z xs) c.Vitali.centers)

let test_vitali_singleton () =
  let c = Vitali.cover p5 ~r:2 [ 3 ] in
  check_int "radius unchanged" 2 c.Vitali.radius;
  Alcotest.(check (list int)) "centre kept" [ 3 ] c.Vitali.centers

let test_vitali_collapse () =
  (* all of a clique: everything within distance 1, must collapse *)
  let xs = Graph.vertices k4 in
  let c = Vitali.cover k4 ~r:1 xs in
  check "valid" true (Vitali.check k4 ~r:1 xs c);
  check_int "single centre suffices" 1 (List.length c.Vitali.centers)

let vitali_property =
  QCheck.Test.make ~name:"vitali cover satisfies Lemma 3 on random trees"
    ~count:60
    QCheck.(pair (int_range 2 25) (int_range 1 3))
    (fun (n, r) ->
      let g = Gen.random_tree ~seed:(n * 31 + r) n in
      let st = Random.State.make [| n; r |] in
      let xs =
        List.sort_uniq compare
          (List.init (1 + Random.State.int st (min n 6)) (fun _ ->
               Random.State.int st n))
      in
      let c = Vitali.cover g ~r xs in
      Vitali.check g ~r xs c)

let tuple_all_size =
  QCheck.Test.make ~name:"Tuple.all has n^k elements" ~count:30
    QCheck.(pair (int_range 1 5) (int_range 0 3))
    (fun (n, k) ->
      let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
      List.length (Cgraph.Graph.Tuple.all ~n ~k) = pow n k)

let ball_monotone =
  QCheck.Test.make ~name:"balls grow with radius" ~count:40
    QCheck.(pair (int_range 2 20) (int_range 0 4))
    (fun (n, r) ->
      let g = Gen.random_tree ~seed:(n + (100 * r)) n in
      let b1 = Bfs.ball g ~r [ 0 ] in
      let b2 = Bfs.ball g ~r:(r + 1) [ 0 ] in
      List.for_all (fun v -> List.mem v b2) b1)

let union_properties =
  QCheck.Test.make ~name:"disjoint union: orders and degrees add" ~count:30
    QCheck.(pair (int_range 1 12) (int_range 1 12))
    (fun (n1, n2) ->
      let g1 = Gen.gnp ~seed:n1 ~n:n1 ~p:0.4 in
      let g2 = Gen.random_tree ~seed:n2 n2 in
      let u, inj = Ops.disjoint_union [ g1; g2 ] in
      Graph.order u = n1 + n2
      && Graph.size u = Graph.size g1 + Graph.size g2
      && List.for_all
           (fun v -> Graph.degree u (inj 0 v) = Graph.degree g1 v)
           (Graph.vertices g1)
      && List.for_all
           (fun v -> Graph.degree u (inj 1 v) = Graph.degree g2 v)
           (Graph.vertices g2))

let delete_edges_properties =
  QCheck.Test.make ~name:"delete_edges_at isolates exactly the targets"
    ~count:30
    QCheck.(int_range 2 15)
    (fun n ->
      let g = Gen.gnp ~seed:n ~n ~p:0.5 in
      let victims = [ 0; n / 2 ] in
      let g' = Ops.delete_edges_at g victims in
      List.for_all (fun v -> Graph.degree g' v = 0) victims
      && List.for_all
           (fun (u, v) ->
             Graph.mem_edge g u v
             || not (Graph.mem_edge g' u v))
           (Graph.edges g'))

let induced_preserves_edges =
  QCheck.Test.make ~name:"induced subgraph preserves edges and colours"
    ~count:40
    QCheck.(int_range 3 15)
    (fun n ->
      let g =
        Gen.colored ~seed:n ~colors:[ "C" ] (Gen.gnp ~seed:n ~n ~p:0.4)
      in
      let s = List.filter (fun v -> v mod 2 = 0) (Graph.vertices g) in
      let emb = Ops.induced g s in
      let h = emb.Ops.graph in
      List.for_all
        (fun u ->
          List.for_all
            (fun v ->
              Graph.mem_edge h u v
              = Graph.mem_edge g (emb.Ops.of_sub u) (emb.Ops.of_sub v))
            (Graph.vertices h))
        (Graph.vertices h)
      && List.for_all
           (fun v ->
             Graph.has_color h "C" v
             = Graph.has_color g "C" (emb.Ops.of_sub v))
           (Graph.vertices h))

let suite =
  [
    Alcotest.test_case "create basic" `Quick test_create_basic;
    Alcotest.test_case "create dedup" `Quick test_create_dedup;
    Alcotest.test_case "reject self-loop" `Quick test_create_rejects_self_loop;
    Alcotest.test_case "reject bad vertex" `Quick test_create_rejects_bad_vertex;
    Alcotest.test_case "colors" `Quick test_colors;
    Alcotest.test_case "with_colors" `Quick test_with_colors;
    Alcotest.test_case "restrict vocabulary" `Quick test_restrict_vocabulary;
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "edges sorted" `Quick test_edges_sorted;
    Alcotest.test_case "to_dot" `Quick test_to_dot;
    Alcotest.test_case "of_adjacency" `Quick test_of_adjacency;
    Alcotest.test_case "tuple all" `Quick test_tuple_all;
    Alcotest.test_case "tuple append" `Quick test_tuple_append;
    Alcotest.test_case "distances" `Quick test_distances;
    Alcotest.test_case "unreachable" `Quick test_unreachable;
    Alcotest.test_case "multi source" `Quick test_multi_source;
    Alcotest.test_case "ball" `Quick test_ball;
    Alcotest.test_case "dist tuple" `Quick test_dist_tuple;
    Alcotest.test_case "dist starts at the lower-degree endpoint" `Quick
      test_dist_swaps_to_lower_degree;
    Alcotest.test_case "tuple count/of_index" `Quick test_tuple_count_of_index;
    Alcotest.test_case "induced" `Quick test_induced;
    Alcotest.test_case "induced colors" `Quick test_induced_colors;
    Alcotest.test_case "neighborhood" `Quick test_neighborhood;
    Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
    Alcotest.test_case "copies merge colors" `Quick test_copies_merge_colors;
    Alcotest.test_case "delete edges at" `Quick test_delete_edges_at;
    Alcotest.test_case "add isolated" `Quick test_add_isolated;
    Alcotest.test_case "subgraph_of" `Quick test_subgraph_of;
    Alcotest.test_case "generators" `Quick test_generators;
    Alcotest.test_case "ktree" `Quick test_ktree;
    Alcotest.test_case "empty and tiny graphs" `Quick test_empty_and_tiny_graphs;
    Alcotest.test_case "generator determinism" `Quick test_generator_determinism;
    Alcotest.test_case "colored balanced" `Quick test_colored_balanced;
    Alcotest.test_case "components" `Quick test_components;
    Alcotest.test_case "degeneracy" `Quick test_degeneracy;
    Alcotest.test_case "diameter" `Quick test_diameter;
    Alcotest.test_case "treewidth exact" `Quick test_treewidth_exact;
    Alcotest.test_case "treedepth bound" `Quick test_treedepth_bound;
    Alcotest.test_case "vitali basic" `Quick test_vitali_basic;
    Alcotest.test_case "vitali singleton" `Quick test_vitali_singleton;
    Alcotest.test_case "vitali collapse" `Quick test_vitali_collapse;
    QCheck_alcotest.to_alcotest vitali_property;
    QCheck_alcotest.to_alcotest tuple_all_size;
    QCheck_alcotest.to_alcotest ball_monotone;
    QCheck_alcotest.to_alcotest ktree_treewidth_property;
    QCheck_alcotest.to_alcotest union_properties;
    QCheck_alcotest.to_alcotest delete_edges_properties;
    QCheck_alcotest.to_alcotest induced_preserves_edges;
  ]
