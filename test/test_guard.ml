(* Tests for the resource-governance layer (folearn.guard):
   - a qcheck transparency property: a Complete outcome under a budget
     is bit-for-bit the unbudgeted result,
   - the fault matrix: a deterministic injected trip at every
     checkpoint class, through a real entry point of that class, never
     escapes as an exception and labels the outcome consistently,
   - the degradation chain (local -> brute at shrinking rank),
   - saturating Ramsey arithmetic (the satellite fix), and
   - parser errors with line/column positions (the satellite fix). *)

open Cgraph
module Sam = Folearn.Sample
module Brute = Folearn.Erm_brute
module Local = Folearn.Erm_local
module Hyp = Folearn.Hypothesis
module R = Folearn.Ramsey

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sample_on g ~k centre =
  Sam.label_with g
    ~target:(fun v -> Bfs.dist g v.(0) centre <= 1)
    (Sam.all_tuples g ~k)

let reason = Alcotest.testable (Fmt.of_to_string Guard.reason_to_string) ( = )

let checkpoint =
  Alcotest.testable (Fmt.of_to_string Guard.checkpoint_to_string) ( = )

(* ------------------------------------------------------------------ *)
(* Transparency: Complete under budget = unbudgeted                    *)
(* ------------------------------------------------------------------ *)

let transparency_prop =
  QCheck.Test.make ~count:30
    ~name:"generous budget: Complete result equals unbudgeted solve"
    QCheck.(triple (int_range 4 10) (int_range 0 1) (int_range 0 1))
    (fun (n, ell, q) ->
      let g = Gen.random_tree ~seed:n n in
      let lam = sample_on g ~k:1 (n / 2) in
      let plain = Brute.solve g ~k:1 ~ell ~q lam in
      match
        Brute.solve_budgeted
          ~budget:(Guard.Budget.make ~fuel:max_int ())
          g ~k:1 ~ell ~q lam
      with
      | Guard.Complete r ->
          r.Brute.err = plain.Brute.err
          && r.Brute.params_tried = plain.Brute.params_tried
          && Hyp.signature r.Brute.hypothesis
             = Hyp.signature plain.Brute.hypothesis
      | Guard.Exhausted _ -> false)

let transparency_no_budget () =
  (* run with no budget at all: Guard.run must be the identity *)
  match Guard.run ~salvage:(fun () -> None) (fun () -> 42) with
  | Guard.Complete v -> check_int "value" 42 v
  | Guard.Exhausted _ -> Alcotest.fail "exhausted without a budget"

(* ------------------------------------------------------------------ *)
(* Fault matrix: one injected trip per checkpoint class                *)
(* ------------------------------------------------------------------ *)

(* Each driver routes through a real entry point whose loops tick the
   targeted class.  Returns the (reason, checkpoint) of the trip. *)
let drive_fault cp =
  let budget () =
    Guard.Budget.make ~faults:(Guard.Faults.trip_at cp ~n:1) ()
  in
  let g = Gen.random_tree ~seed:5 12 in
  let lam = sample_on g ~k:1 6 in
  match cp with
  | Guard.Solver_loop | Guard.Hintikka_build -> (
      match Brute.solve_budgeted ~budget:(budget ()) g ~k:1 ~ell:1 ~q:1 lam with
      | Guard.Complete _ -> None
      | Guard.Exhausted { reason; checkpoint; _ } -> Some (reason, checkpoint))
  | Guard.Bfs_frontier -> (
      match Local.solve_budgeted ~budget:(budget ()) g ~k:1 ~ell:1 ~q:1 lam with
      | Guard.Complete _ -> None
      | Guard.Exhausted { reason; checkpoint; _ } -> Some (reason, checkpoint))
  | Guard.Catalogue_growth -> (
      match
        Folearn.Catalogue.of_local_types_budgeted ~budget:(budget ()) g ~ell:1
          ~q:1 ~r:1 ()
      with
      | Guard.Complete _ -> None
      | Guard.Exhausted { reason; checkpoint; _ } -> Some (reason, checkpoint))
  | Guard.Eval_step -> (
      let phi = Fo.Parser.parse "forall x. exists y. E(x, y)" in
      match
        Guard.run ~budget:(budget ())
          ~salvage:(fun () -> None)
          (fun () -> Modelcheck.Eval.sentence g phi)
      with
      | Guard.Complete _ -> None
      | Guard.Exhausted { reason; checkpoint; _ } -> Some (reason, checkpoint))

let test_fault_matrix () =
  List.iter
    (fun cp ->
      match drive_fault cp with
      | None ->
          Alcotest.failf "fault at %s never fired"
            (Guard.checkpoint_to_string cp)
      | Some (r, at) ->
          Alcotest.check reason
            (Guard.checkpoint_to_string cp ^ " reason")
            Guard.Injected_fault r;
          Alcotest.check checkpoint
            (Guard.checkpoint_to_string cp ^ " checkpoint")
            cp at)
    Guard.all_checkpoints

let test_fault_no_leak () =
  (* a trip mid-solve must not leave an ambient budget installed *)
  let g = Gen.path 8 in
  let lam = sample_on g ~k:1 4 in
  let _ =
    Brute.solve_budgeted
      ~budget:
        (Guard.Budget.make ~faults:(Guard.Faults.trip_at Solver_loop ~n:1) ())
      g ~k:1 ~ell:0 ~q:1 lam
  in
  check "no ambient budget after exhaustion" false (Guard.active ())

let test_salvage_err_is_true_error () =
  (* the salvaged best-so-far must carry its genuine empirical error *)
  let g = Gen.random_tree ~seed:9 14 in
  let lam = sample_on g ~k:1 7 in
  match
    Brute.solve_budgeted
      ~budget:
        (Guard.Budget.make ~faults:(Guard.Faults.trip_at Solver_loop ~n:10) ())
      g ~k:1 ~ell:1 ~q:1 lam
  with
  | Guard.Complete _ -> Alcotest.fail "expected exhaustion"
  | Guard.Exhausted { best_so_far = None; _ } ->
      Alcotest.fail "9 candidates in, something must have been salvaged"
  | Guard.Exhausted { best_so_far = Some r; _ } ->
      Alcotest.(check (float 1e-9))
        "salvaged err recomputes" r.Brute.err
        (Hyp.training_error r.Brute.hypothesis lam)

let test_fuel_and_deadline () =
  let g = Gen.random_tree ~seed:3 16 in
  let lam = sample_on g ~k:1 8 in
  (match
     Brute.solve_budgeted ~budget:(Guard.Budget.make ~fuel:5 ()) g ~k:1 ~ell:1
       ~q:1 lam
   with
  | Guard.Complete _ -> Alcotest.fail "5 fuel cannot finish"
  | Guard.Exhausted { reason = r; _ } ->
      Alcotest.check reason "fuel" Guard.Out_of_fuel r);
  match
    Brute.solve_budgeted
      ~budget:(Guard.Budget.make ~timeout_s:0.0 ())
      g ~k:1 ~ell:1 ~q:1 lam
  with
  | Guard.Complete _ -> Alcotest.fail "a zero deadline cannot finish"
  | Guard.Exhausted { reason = r; _ } ->
      Alcotest.check reason "deadline" Guard.Deadline r

let test_seeded_faults_deterministic () =
  let p = Guard.Faults.seeded ~seed:7 ~rate:0.5 in
  let q = Guard.Faults.seeded ~seed:7 ~rate:0.5 in
  let fired plan =
    List.concat_map
      (fun cp -> List.init 50 (fun n -> Guard.Faults.fires plan cp (n + 1)))
      Guard.all_checkpoints
  in
  check "same seed, same plan" true (fired p = fired q);
  check "rate 0 never fires" true
    (List.for_all not (fired (Guard.Faults.seeded ~seed:3 ~rate:0.0)));
  check "rate 1 always fires" true
    (List.for_all Fun.id (fired (Guard.Faults.seeded ~seed:3 ~rate:1.0)));
  (* ~half the hits at rate 0.5, very loosely *)
  let hits = List.length (List.filter Fun.id (fired p)) in
  check "rate 0.5 is neither never nor always" true (hits > 50 && hits < 200)

(* ------------------------------------------------------------------ *)
(* Degradation chain                                                   *)
(* ------------------------------------------------------------------ *)

let test_degrade_unbudgeted_is_local () =
  let g = Gen.random_tree ~seed:11 14 in
  let lam = sample_on g ~k:1 7 in
  let plain = Local.solve g ~k:1 ~ell:1 ~q:1 lam in
  match Folearn.Degrade.learn g ~k:1 ~ell:1 ~q:1 lam with
  | Guard.Complete l ->
      check "not degraded" false l.Folearn.Degrade.degraded;
      Alcotest.(check (float 1e-9))
        "same err" plain.Local.err l.Folearn.Degrade.err
  | Guard.Exhausted _ -> Alcotest.fail "no budget, cannot exhaust"

let test_degrade_falls_back () =
  let g = Gen.random_tree ~seed:11 18 in
  let lam = sample_on g ~k:1 9 in
  match
    Folearn.Degrade.learn ~budget:(Guard.Budget.make ~fuel:2_000 ()) g ~k:1
      ~ell:1 ~q:2 lam
  with
  | Guard.Complete l ->
      check "fallback stage answered" true l.Folearn.Degrade.degraded;
      check "rank strictly dropped" true (l.Folearn.Degrade.q_used < 2);
      check "solver is brute" true (l.Folearn.Degrade.solver = "brute");
      check "attempts recorded" true (l.Folearn.Degrade.attempts <> []);
      Alcotest.(check (float 1e-9))
        "err recomputes" l.Folearn.Degrade.err
        (Hyp.training_error l.Folearn.Degrade.hypothesis lam)
  | Guard.Exhausted _ ->
      Alcotest.fail "2000 fuel finishes brute at rank 0 on 18 vertices"

let test_degrade_total_exhaustion () =
  let g = Gen.random_tree ~seed:11 18 in
  let lam = sample_on g ~k:1 9 in
  (* precheck off: this test is about the runtime burn and its spend
     aggregation, which admission would (correctly) short-circuit *)
  match
    Folearn.Degrade.learn ~budget:(Guard.Budget.make ~fuel:1 ()) ~precheck:false
      g ~k:1 ~ell:1 ~q:2 lam
  with
  | Guard.Complete _ -> Alcotest.fail "1 fuel per stage cannot finish"
  | Guard.Exhausted { reason = r; spent; _ } ->
      Alcotest.check reason "out of fuel" Guard.Out_of_fuel r;
      (* aggregated spend covers all four stages (q=2,1,0 + local) *)
      check "aggregate fuel over stages" true (spent.Guard.fuel >= 4)

(* ------------------------------------------------------------------ *)
(* Saturating Ramsey arithmetic                                        *)
(* ------------------------------------------------------------------ *)

let test_ramsey_saturates () =
  check "30 colours saturate" true
    (R.triangle_bound_sat ~colors:30 = R.Saturated);
  check "factorial 30 saturates" true (R.factorial_sat 30 = R.Saturated);
  (match R.triangle_bound_sat ~colors:3 with
  | R.Finite v -> check_int "R_3(3) bound" 17 v
  | R.Saturated -> Alcotest.fail "3 colours are finite");
  check "sat agrees with exn API" true
    (R.ramsey_upper_sat ~colors:2 ~clique:3 = R.Finite (R.ramsey_upper ~colors:2 ~clique:3));
  Alcotest.check_raises "exn API still raises on overflow"
    (Invalid_argument "Ramsey.triangle_bound: overflow") (fun () ->
      ignore (R.triangle_bound ~colors:30));
  Alcotest.check_raises "factorial raises on overflow"
    (Invalid_argument "Ramsey.factorial: overflow") (fun () ->
      ignore (R.factorial 30))

let saturation_never_negative =
  QCheck.Test.make ~count:200
    ~name:"saturating bounds are Saturated or genuinely non-negative"
    QCheck.(pair (int_range 1 30) (int_range 1 3))
    (fun (colors, clique) ->
      (match R.triangle_bound_sat ~colors with
      | R.Finite v -> v >= 0
      | R.Saturated -> true)
      &&
      match R.ramsey_upper_sat ~colors ~clique with
      | R.Finite v -> v >= 1
      | R.Saturated -> true)

(* ------------------------------------------------------------------ *)
(* Parser positions                                                    *)
(* ------------------------------------------------------------------ *)

let test_parser_positions () =
  (match Fo.Parser.parse_result "exists x.\n  E(x," with
  | Ok _ -> Alcotest.fail "malformed input parsed"
  | Error e ->
      check_int "line" 2 e.Fo.Parser.position.Fo.Parser.line;
      check_int "col" 7 e.Fo.Parser.position.Fo.Parser.col;
      check "token named" true (e.Fo.Parser.token <> None));
  (match Fo.Parser.parse_result "E(x, y) /\\ ?" with
  | Ok _ -> Alcotest.fail "malformed input parsed"
  | Error e ->
      check_int "line" 1 e.Fo.Parser.position.Fo.Parser.line;
      check_int "col" 12 e.Fo.Parser.position.Fo.Parser.col);
  match Fo.Parser.parse_result "forall x. exists y. E(x, y)" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid input rejected: %s" (Fo.Parser.error_to_string e)

let test_parser_error_message_has_position () =
  try
    ignore (Fo.Parser.parse "exists . true");
    Alcotest.fail "malformed input parsed"
  with Fo.Parser.Parse_error m ->
    check "message carries line/column" true
      (String.length m >= 16 && String.sub m 0 16 = "line 1, column 8")

(* ------------------------------------------------------------------ *)

let suite =
  [
    QCheck_alcotest.to_alcotest transparency_prop;
    Alcotest.test_case "run without budget is transparent" `Quick
      transparency_no_budget;
    Alcotest.test_case "fault matrix covers every checkpoint class" `Quick
      test_fault_matrix;
    Alcotest.test_case "exhaustion uninstalls the ambient budget" `Quick
      test_fault_no_leak;
    Alcotest.test_case "salvaged hypothesis carries its true error" `Quick
      test_salvage_err_is_true_error;
    Alcotest.test_case "fuel and deadline exhaustion reasons" `Quick
      test_fuel_and_deadline;
    Alcotest.test_case "seeded fault plans are deterministic" `Quick
      test_seeded_faults_deterministic;
    Alcotest.test_case "degrade without budget = Erm_local" `Quick
      test_degrade_unbudgeted_is_local;
    Alcotest.test_case "degrade falls back to brute at smaller rank" `Quick
      test_degrade_falls_back;
    Alcotest.test_case "degrade aggregates spend on total exhaustion" `Quick
      test_degrade_total_exhaustion;
    Alcotest.test_case "Ramsey bounds saturate instead of wrapping" `Quick
      test_ramsey_saturates;
    QCheck_alcotest.to_alcotest saturation_never_negative;
    Alcotest.test_case "parse errors carry line/column positions" `Quick
      test_parser_positions;
    Alcotest.test_case "Parse_error message embeds the position" `Quick
      test_parser_error_message_has_position;
  ]
