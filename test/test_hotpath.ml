(* Hot-path engine tests: compiled evaluation ≡ reference walker, CSR
   graph ≡ naive reference model (also under concurrent readers), the
   Int.compare sort regressions, and the sharded intern registry
   lifecycle. *)

open Cgraph
module F = Fo.Formula
module E = Modelcheck.Eval
module C = Modelcheck.Compile
module T = Modelcheck.Types

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* counters record only while the sink is on; leave it off afterwards *)
let with_sink f =
  Obs.enable ();
  Fun.protect ~finally:Obs.disable f

let p4 = Gen.path 4

(* ------------------------------------------------------------------ *)
(* Compiled evaluator ≡ reference walker                               *)
(* ------------------------------------------------------------------ *)

let quantifier_nodes = Obs.Metric.counter "modelcheck.eval.quantifier_nodes"

(* Wrap a generated formula in a counting quantifier sometimes:
   [gen_formula] never emits CountGe, and the compiled path must agree
   on it too. *)
let gen_formula_cge vars depth st =
  let f = Test_formula.gen_formula vars depth st in
  if Random.State.int st 3 = 0 then
    F.count_ge (1 + Random.State.int st 3) "c0" (F.Or [ f; F.edge "c0" "c0" ])
  else f

let compiled_agrees_with_reference =
  QCheck.Test.make ~name:"compiled evaluation = reference walker" ~count:150
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let st = Random.State.make [| seed; 0xc0 |] in
      let g =
        Gen.colored ~seed ~colors:[ "Red"; "Blue" ]
          (Gen.gnp ~seed:(seed + 1) ~n:5 ~p:0.4)
      in
      let f = gen_formula_cge [ "x"; "y" ] 3 st in
      let comp = C.compile g ~vars:[ "x"; "y" ] f in
      List.for_all
        (fun vx ->
          List.for_all
            (fun vy ->
              C.holds_tuple comp [| vx; vy |]
              = E.holds g [ ("x", vx); ("y", vy) ] f)
            [ 0; 2; 4 ])
        [ 1; 3 ])

(* The compiled code must tick and count exactly like the walker: the
   focost fuel envelopes and the E19 counter baselines both assume one
   Eval_step / one quantifier_nodes increment per quantifier visit. *)
let test_compiled_counter_parity () =
  with_sink @@ fun () ->
  let st = Random.State.make [| 7; 0xc1 |] in
  for i = 0 to 30 do
    let g = Gen.gnp ~seed:i ~n:5 ~p:0.5 in
    let f = gen_formula_cge [ "x" ] 4 st in
    let before = Obs.Metric.value quantifier_nodes in
    let r_ref = E.holds g [ ("x", 1) ] f in
    let mid = Obs.Metric.value quantifier_nodes in
    let r_cmp = C.holds_tuple (C.compile g ~vars:[ "x" ] f) [| 1 |] in
    let after = Obs.Metric.value quantifier_nodes in
    check "same verdict" r_ref r_cmp;
    check_int
      (Printf.sprintf "same quantifier-node count (seed %d)" i)
      (mid - before) (after - mid)
  done

let test_compiled_unbound_lazy () =
  (* unbound variables surface when the atom is reached, not at compile
     time — and not at all if short-circuiting skips the atom *)
  let f_skipped = F.Or [ F.tru; F.eq "z" "z" ] in
  check "skipped unbound atom is no error" true
    (C.holds_tuple (C.compile p4 ~vars:[] f_skipped) [||]);
  let f_hit = F.And [ F.tru; F.eq "z" "z" ] in
  let comp = C.compile p4 ~vars:[] f_hit in
  check "reached unbound atom raises" true
    (try
       ignore (C.holds_tuple comp [||]);
       false
     with E.Unbound_variable "z" -> true)

let test_compiled_validation () =
  check "duplicate free variable rejected" true
    (try
       ignore (C.compile p4 ~vars:[ "x"; "x" ] F.tru);
       false
     with Invalid_argument _ -> true);
  check "arity mismatch rejected" true
    (try
       ignore (C.holds_tuple (C.compile p4 ~vars:[ "x" ] F.tru) [| 0; 1 |]);
       false
     with Invalid_argument _ -> true)

let test_compile_cache () =
  with_sink @@ fun () ->
  let g = Gen.cycle 5 in
  let f = F.exists "y" (F.edge "x" "y") in
  let hits = Obs.Metric.counter "modelcheck.compile.cache_hits" in
  ignore (E.holds_tuple g ~vars:[ "x" ] [| 0 |] f);
  let before = Obs.Metric.value hits in
  ignore (E.holds_tuple g ~vars:[ "x" ] [| 1 |] f);
  check "second evaluation hits the compile cache" true
    (Obs.Metric.value hits > before);
  (* colour expansion refreshes the graph uid, so the cache cannot
     serve a closure staged against the old vocabulary *)
  let f = F.color "Fresh" "x" in
  check "before expansion: colour empty" false
    (E.holds_tuple g ~vars:[ "x" ] [| 0 |] f);
  let g' = Graph.with_colors g [ ("Fresh", [ 0 ]) ] in
  check "after expansion: colour seen" true
    (E.holds_tuple g' ~vars:[ "x" ] [| 0 |] f)

(* ------------------------------------------------------------------ *)
(* CSR graph ≡ naive reference model                                   *)
(* ------------------------------------------------------------------ *)

(* An independent model: adjacency matrix + Queue-based BFS, built from
   the same raw edge list the CSR graph was. *)
let naive_model n edges =
  let adj = Array.make_matrix n n false in
  List.iter
    (fun (u, v) ->
      adj.(u).(v) <- true;
      adj.(v).(u) <- true)
    edges;
  let neighbors v =
    List.filter (fun w -> adj.(v).(w)) (List.init n Fun.id)
  in
  let bfs src =
    let dist = Array.make n (-1) in
    let q = Queue.create () in
    dist.(src) <- 0;
    Queue.add src q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun w ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(v) + 1;
            Queue.add w q
          end)
        (neighbors v)
    done;
    dist
  in
  (adj, neighbors, bfs)

let random_edges st n =
  let m = Random.State.int st (2 * n) in
  List.init m (fun _ ->
      let u = Random.State.int st n and v = Random.State.int st n in
      if u = v then None else Some (min u v, max u v))
  |> List.filter_map Fun.id

let agree_with_naive g n (adj, nbrs, bfs) =
  List.for_all
    (fun v ->
      Array.to_list (Graph.neighbors g v) = nbrs v
      && Graph.degree g v = List.length (nbrs v)
      && List.for_all (fun w -> Graph.mem_edge g v w = adj.(v).(w))
           (List.init n Fun.id))
    (List.init n Fun.id)
  && List.for_all
       (fun src ->
         let d = Bfs.distances g src in
         let d' = bfs src in
         Array.to_list d
         = List.map
             (fun i -> if d'.(i) < 0 then Bfs.infinity else d'.(i))
             (List.init n Fun.id))
       (List.init n Fun.id)

let csr_agrees_with_naive =
  QCheck.Test.make ~name:"CSR graph = naive reference model" ~count:120
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let st = Random.State.make [| seed; 0xcf |] in
      let n = 1 + Random.State.int st 12 in
      (* duplicates and both orientations on purpose: create must
         merge them *)
      let edges = random_edges st n in
      let doubled = edges @ List.map (fun (u, v) -> (v, u)) edges in
      let g = Graph.create ~n ~edges:doubled ~colors:[] in
      agree_with_naive g n (naive_model n edges))

(* The CSR arrays and colour bitsets are shared, read-only, across
   domains; run the whole naive-model comparison from 1, 2 and 4
   concurrent readers. *)
let test_csr_concurrent_readers () =
  let st = Random.State.make [| 42; 0xd0 |] in
  let n = 14 in
  let edges = random_edges st n in
  let g =
    Graph.with_colors
      (Graph.create ~n ~edges ~colors:[])
      [ ("Red", [ 0; 3; 7 ]) ]
  in
  let model = naive_model n edges in
  let body () =
    agree_with_naive g n model
    && Graph.has_color g "Red" 3
    && not (Graph.has_color g "Red" 1)
    && C.holds_tuple
         (C.compile g ~vars:[ "x" ] (F.color "Red" "x"))
         [| 7 |]
  in
  List.iter
    (fun jobs ->
      let workers = List.init jobs (fun _ -> Domain.spawn body) in
      check
        (Printf.sprintf "consistent under %d readers" jobs)
        true
        (List.for_all Domain.join workers))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Int.compare sort regressions                                        *)
(* ------------------------------------------------------------------ *)

let test_rows_sorted_dedup () =
  (* shuffled, duplicated input must come out strictly increasing *)
  let edges = [ (9, 0); (0, 3); (3, 0); (0, 9); (0, 1); (1, 0); (0, 7) ] in
  let g = Graph.create ~n:10 ~edges ~colors:[] in
  check "row sorted and deduplicated" true
    (Array.to_list (Graph.neighbors g 0) = [ 1; 3; 7; 9 ]);
  check_int "degree counts distinct neighbours" 4 (Graph.degree g 0);
  check_int "size counts undirected edges once" 4 (Graph.size g);
  let shuffled = Graph.create ~n:10 ~edges:(List.rev edges) ~colors:[] in
  check "edge-order insensitive" true (Graph.equal g shuffled)

let tuple_compare_is_structural =
  (* Tuple.compare switched to explicit Int.compare; candidate
     enumeration order depends on it agreeing with the polymorphic
     order on int arrays (length first, then elementwise) *)
  QCheck.Test.make ~name:"Tuple.compare agrees with polymorphic compare"
    ~count:200
    QCheck.(pair (array_of_size Gen.(0 -- 4) small_nat)
              (array_of_size Gen.(0 -- 4) small_nat))
    (fun (a, b) ->
      let sign x = Stdlib.compare x 0 in
      sign (Graph.Tuple.compare a b) = sign (Stdlib.compare a b))

(* ------------------------------------------------------------------ *)
(* Sharded intern registry                                             *)
(* ------------------------------------------------------------------ *)

let test_intern_reset_lifecycle () =
  T.reset_tables ();
  check_int "empty after reset" 0 (T.table_stats ()).T.live;
  let t1 = T.tp_graph p4 ~q:1 [| 0 |] in
  let stats = T.table_stats () in
  check "interning grows the registry" true (stats.T.live > 0);
  check "bytes estimate is positive" true (stats.T.bytes > 0);
  T.reset_tables ();
  check_int "reset empties" 0 (T.table_stats ()).T.live;
  check "stale id raises" true
    (try
       ignore (T.rank t1);
       false
     with Invalid_argument _ -> true);
  (* id assignment is deterministic: replaying the same interning from
     an empty registry yields the same ids *)
  let t2 = T.tp_graph p4 ~q:1 [| 0 |] in
  check_int "ids replay identically" 0 (T.compare t1 t2);
  check_int "registry size replays identically" stats.T.live
    (T.table_stats ()).T.live

let test_intern_cross_domain_merge () =
  with_sink @@ fun () ->
  T.reset_tables ();
  let merges = Obs.Metric.counter "modelcheck.types.shard_merges" in
  let t_here = T.tp_graph p4 ~q:1 [| 1 |] in
  let before = Obs.Metric.value merges in
  (* a fresh domain has an empty shard: it must catch up through the
     lock-free merge and agree on the canonical id *)
  let t_there =
    Domain.join (Domain.spawn (fun () -> T.tp_graph p4 ~q:1 [| 1 |]))
  in
  check_int "same canonical id across domains" 0 (T.compare t_here t_there);
  check "merge was lock-free replay, not re-allocation" true
    (Obs.Metric.value merges > before)

let test_ctypes_reset () =
  Modelcheck.Ctypes.reset_tables ();
  let before = (Modelcheck.Ctypes.table_stats ()).Modelcheck.Ctypes.live in
  check_int "ctypes registry empty after reset" 0 before;
  ignore (Modelcheck.Ctypes.count_types p4 ~q:1 ~tmax:2 ~k:1);
  check "ctypes registry grows" true
    ((Modelcheck.Ctypes.table_stats ()).Modelcheck.Ctypes.live > 0);
  Modelcheck.Ctypes.reset_tables ();
  check_int "ctypes reset empties" 0
    (Modelcheck.Ctypes.table_stats ()).Modelcheck.Ctypes.live

let suite =
  [
    QCheck_alcotest.to_alcotest compiled_agrees_with_reference;
    Alcotest.test_case "compiled counter parity" `Quick
      test_compiled_counter_parity;
    Alcotest.test_case "compiled unbound laziness" `Quick
      test_compiled_unbound_lazy;
    Alcotest.test_case "compile-time validation" `Quick
      test_compiled_validation;
    Alcotest.test_case "compile cache (hits, uid freshness)" `Quick
      test_compile_cache;
    QCheck_alcotest.to_alcotest csr_agrees_with_naive;
    Alcotest.test_case "CSR under concurrent readers (1/2/4)" `Quick
      test_csr_concurrent_readers;
    Alcotest.test_case "rows sorted + deduplicated" `Quick
      test_rows_sorted_dedup;
    QCheck_alcotest.to_alcotest tuple_compare_is_structural;
    Alcotest.test_case "intern reset lifecycle" `Quick
      test_intern_reset_lifecycle;
    Alcotest.test_case "intern cross-domain merge" `Quick
      test_intern_cross_domain_merge;
    Alcotest.test_case "ctypes registry lifecycle" `Quick test_ctypes_reset;
  ]
