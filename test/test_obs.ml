(* Tests for the observability layer (folearn.obs):
   - span nesting, ordering and exception safety,
   - histogram percentile math on the log-scale buckets,
   - metric snapshot <-> JSON round-trips and the JSON substrate,
   - clock monotonicity,
   - a qcheck property that enabling the sink never changes what any
     solver learns (instrumentation must be observation-only),
   - fresh-name determinism in Prenex / Localize (the satellite fix). *)

open Cgraph
module F = Fo.Formula
module Hyp = Folearn.Hypothesis
module Sam = Folearn.Sample
module Brute = Folearn.Erm_brute

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* every test leaves the global sink disabled, whatever happens *)
let with_sink f =
  Obs.enable ();
  Obs.reset_all ();
  Fun.protect ~finally:Obs.disable f

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  with_sink (fun () ->
      Obs.Span.with_ "outer" (fun () ->
          Obs.Span.with_ "inner1" (fun () -> ignore (Sys.opaque_identity 1));
          Obs.Span.with_ "inner2" (fun () -> ignore (Sys.opaque_identity 2)));
      let spans = Obs.Span.finished () in
      check_int "three spans" 3 (List.length spans);
      let names = List.map (fun s -> s.Obs.Span.name) spans in
      (* parents sort before their children, siblings by start time *)
      check "order" true (names = [ "outer"; "inner1"; "inner2" ]);
      let depths = List.map (fun s -> s.Obs.Span.depth) spans in
      check "depths" true (depths = [ 0; 1; 1 ]);
      let outer = List.hd spans in
      List.iter
        (fun s ->
          check "child starts inside parent" true
            (s.Obs.Span.start_ns >= outer.Obs.Span.start_ns);
          check "child ends inside parent" true
            (Int64.add s.Obs.Span.start_ns s.Obs.Span.dur_ns
            <= Int64.add outer.Obs.Span.start_ns outer.Obs.Span.dur_ns))
        (List.tl spans))

let test_span_disabled_records_nothing () =
  with_sink (fun () -> ());
  (* sink is disabled again here *)
  Obs.Span.with_ "invisible" (fun () -> ());
  check_int "nothing recorded while disabled" 0 (Obs.Span.count ())

let test_span_survives_exception () =
  with_sink (fun () ->
      (try Obs.Span.with_ "boom" (fun () -> raise Exit)
       with Exit -> ());
      let names = List.map (fun s -> s.Obs.Span.name) (Obs.Span.finished ()) in
      check "raising span still recorded" true (names = [ "boom" ]))

let test_chrome_trace_shape () =
  with_sink (fun () ->
      Obs.Span.with_ ~args:[ ("k", "2") ] "solve" (fun () -> ());
      let doc = Obs.Span.chrome_trace () in
      (* the export must survive its own serializer *)
      match Obs.Json.of_string (Obs.Json.to_string doc) with
      | Error m -> Alcotest.failf "chrome trace does not re-parse: %s" m
      | Ok doc -> (
          match Obs.Json.member "traceEvents" doc with
          | Some (Obs.Json.List [ ev ]) ->
              let field name =
                Option.bind (Obs.Json.member name ev) Obs.Json.to_string_opt
              in
              check_str "ph" "X" (Option.value ~default:"?" (field "ph"));
              check_str "name" "solve"
                (Option.value ~default:"?" (field "name"))
          | _ -> Alcotest.fail "traceEvents must hold exactly one event"))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_registry_shared () =
  with_sink (fun () ->
      (* two lookups of one name must address the same cell *)
      let a = Obs.Metric.counter "test.shared" in
      let b = Obs.Metric.counter "test.shared" in
      Obs.Metric.incr a;
      Obs.Metric.add b 2;
      check_int "shared cell" 3 (Obs.Metric.value a);
      let snap = Obs.Metric.snapshot () in
      check_int "snapshot sees it" 3 (Obs.Metric.find_counter snap "test.shared");
      check_int "missing counters read 0" 0
        (Obs.Metric.find_counter snap "test.absent"))

let test_histogram_percentiles () =
  with_sink (fun () ->
      let h = Obs.Metric.histogram "test.hist" in
      (* uniform 1..1000: p50 ~ 500, p90 ~ 900, p99 ~ 990.  The log
         buckets are quarter-doublings, so the representative can be off
         by at most a factor of 2^(1/4) ~ 1.19. *)
      for v = 1 to 1000 do
        Obs.Metric.observe h (float_of_int v)
      done;
      let snap = Obs.Metric.snapshot () in
      let hs = List.assoc "test.hist" snap.Obs.Metric.histograms in
      check_int "count" 1000 hs.Obs.Metric.hs_count;
      check "min" true (hs.Obs.Metric.hs_min = 1.0);
      check "max" true (hs.Obs.Metric.hs_max = 1000.0);
      let within p expected =
        let v = Obs.Metric.quantile hs p in
        v >= expected /. 1.2 && v <= expected *. 1.2
      in
      check "p50" true (within 0.5 500.0);
      check "p90" true (within 0.9 900.0);
      check "p99" true (within 0.99 990.0);
      (* degenerate cases *)
      check "empty hist quantile" true
        (Obs.Metric.quantile
           { hs with Obs.Metric.hs_count = 0; hs_buckets = [] }
           0.5
        = 0.0))

(* regression: on narrow integer data the log-bucket representative can
   exceed the tracked maximum (cgraph.bfs.ball_size once reported
   p99 = 17.45 with max = 18 but p50 = 10.37 on all-10 data) — every
   quantile must be clamped into [min, max] *)
let test_quantile_clamped_to_range () =
  with_sink (fun () ->
      let h = Obs.Metric.histogram "test.clamp" in
      for _ = 1 to 100 do
        Obs.Metric.observe h 10.0
      done;
      let snap = Obs.Metric.snapshot () in
      let hs = List.assoc "test.clamp" snap.Obs.Metric.histograms in
      (* all mass in bucket [9.51, 11.31): the raw midpoint 10.37 > max *)
      List.iter
        (fun p ->
          let v = Obs.Metric.quantile hs p in
          check (Printf.sprintf "p%g within [min, max]" (p *. 100.0)) true
            (v >= hs.Obs.Metric.hs_min && v <= hs.Obs.Metric.hs_max);
          check (Printf.sprintf "p%g is exactly 10" (p *. 100.0)) true
            (v = 10.0))
        [ 0.5; 0.9; 0.99 ];
      (* mixed integer data: quantiles must be monotone and in range *)
      let h2 = Obs.Metric.histogram "test.clamp2" in
      List.iter
        (fun v -> Obs.Metric.observe h2 (float_of_int v))
        [ 10; 10; 10; 10; 12; 13; 14; 15; 17; 18 ];
      let snap = Obs.Metric.snapshot () in
      let hs2 = List.assoc "test.clamp2" snap.Obs.Metric.histograms in
      let p50 = Obs.Metric.quantile hs2 0.5 in
      let p90 = Obs.Metric.quantile hs2 0.9 in
      let p99 = Obs.Metric.quantile hs2 0.99 in
      check "p50 <= p90 <= p99" true (p50 <= p90 && p90 <= p99);
      check "all within [min, max]" true
        (p50 >= hs2.Obs.Metric.hs_min && p99 <= hs2.Obs.Metric.hs_max))

let test_snapshot_json_roundtrip () =
  with_sink (fun () ->
      Obs.Metric.incr (Obs.Metric.counter "rt.counter");
      Obs.Metric.set (Obs.Metric.gauge "rt.gauge") 2.5;
      let h = Obs.Metric.histogram "rt.hist" in
      List.iter (Obs.Metric.observe h) [ 0.5; 1.0; 7.0; 300.0 ];
      let snap = Obs.Metric.snapshot () in
      let json_text =
        Obs.Json.to_string (Obs.Metric.snapshot_to_json snap)
      in
      match Obs.Json.of_string json_text with
      | Error m -> Alcotest.failf "snapshot does not re-parse: %s" m
      | Ok doc -> (
          match Obs.Metric.snapshot_of_json doc with
          | Error m -> Alcotest.failf "snapshot_of_json: %s" m
          | Ok snap' ->
              check "counters round-trip" true
                (snap.Obs.Metric.counters = snap'.Obs.Metric.counters);
              check "gauges round-trip" true
                (snap.Obs.Metric.gauges = snap'.Obs.Metric.gauges);
              check "histograms round-trip" true
                (snap.Obs.Metric.histograms = snap'.Obs.Metric.histograms)))

let test_json_parser () =
  let rt v =
    match Obs.Json.of_string (Obs.Json.to_string v) with
    | Ok v' -> v' = v
    | Error _ -> false
  in
  check "nested round-trip" true
    (rt
       (Obs.Json.Obj
          [
            ( "a",
              Obs.Json.List
                [
                  Obs.Json.Int 1; Obs.Json.Float 2.5; Obs.Json.Null;
                  Obs.Json.Bool true; Obs.Json.String "x\"y\n";
                ] );
            ("b", Obs.Json.Obj [ ("c", Obs.Json.Int (-3)) ]);
          ]));
  check "bare int parses as Int" true
    (Obs.Json.of_string "42" = Ok (Obs.Json.Int 42));
  check "decimal parses as Float" true
    (Obs.Json.of_string "42.0" = Ok (Obs.Json.Float 42.0));
  check "truncated document rejected" true
    (Result.is_error (Obs.Json.of_string "{\"a\": "));
  check "trailing garbage rejected" true
    (Result.is_error (Obs.Json.of_string "1 2"));
  (* non-finite floats must degrade to null, not emit invalid JSON *)
  check "infinity encodes as null" true
    (Obs.Json.to_string (Obs.Json.Float infinity) = "null")

let test_clock_monotone () =
  let last = ref (Obs.Clock.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Obs.Clock.now_ns () in
    if t < !last then Alcotest.fail "clock went backwards";
    last := t
  done;
  check "elapsed is non-negative" true (Obs.Clock.elapsed_s !last >= 0.0)

(* ------------------------------------------------------------------ *)
(* QCheck: instrumentation is observation-only                         *)
(* ------------------------------------------------------------------ *)

let qcheck_tracing_transparent =
  QCheck.Test.make
    ~name:"enabling the sink never changes what Erm_brute learns" ~count:20
    QCheck.small_int (fun seed ->
      let n = 5 + (seed mod 4) in
      let g =
        Gen.colored ~seed ~colors:[ "Red" ] (Gen.random_tree ~seed n)
      in
      let w = seed mod n in
      let lam =
        Sam.label_with g
          ~target:(fun v -> Graph.mem_edge g v.(0) w)
          (Sam.all_tuples g ~k:1)
      in
      let solve () = Brute.solve g ~k:1 ~ell:1 ~q:1 lam in
      Obs.disable ();
      let off = solve () in
      let on = with_sink solve in
      off.Brute.err = on.Brute.err
      && off.Brute.params_tried = on.Brute.params_tried
      && List.for_all
           (fun t ->
             Hyp.predict off.Brute.hypothesis t
             = Hyp.predict on.Brute.hypothesis t)
           (Sam.all_tuples g ~k:1))

(* ------------------------------------------------------------------ *)
(* Fresh names in Prenex / Localize                                    *)
(* ------------------------------------------------------------------ *)

let cycle_red n =
  Graph.with_colors (Gen.cycle n)
    [ ("Red", List.filter (fun v -> v mod 2 = 0) (List.init n Fun.id)) ]

let test_prenex_deterministic () =
  (* the input reuses the generator's own namespace: _p1 appears bound
     twice, so naive _pN freshening would capture *)
  let phi =
    Fo.Parser.parse
      "(exists _p1. Red(_p1)) /\\ (forall _p1. exists y. E(_p1, y))"
  in
  let p1 = Fo.Prenex.to_prenex phi in
  let p2 = Fo.Prenex.to_prenex phi in
  check "two runs agree syntactically" true (p1 = p2);
  check "result is prenex" true (Fo.Prenex.is_prenex p1);
  check_int "all three quantifiers pulled" 3 (Fo.Prenex.prefix_length p1);
  check "prenex form stays a sentence" true (F.free_vars p1 = []);
  let g = cycle_red 6 in
  check "semantics preserved" (Modelcheck.Eval.sentence g phi)
    (Modelcheck.Eval.sentence g p1)

let test_localize_avoids_endpoints () =
  (* an endpoint named like a generated variable must not get captured *)
  let f = Fo.Localize.dist_le ~d:4 "_d1" "y" in
  let frees = List.sort String.compare (F.free_vars f) in
  check "free variables are exactly the endpoints" true
    (frees = [ "_d1"; "y" ]);
  check "deterministic" true (f = Fo.Localize.dist_le ~d:4 "_d1" "y");
  (* and the formula still means distance <= 4 *)
  let g = Gen.path 8 in
  let dist_ok =
    List.for_all
      (fun (u, v) ->
        Modelcheck.Eval.holds g [ ("_d1", u); ("y", v) ] f
        = (abs (u - v) <= 4))
      [ (0, 0); (0, 3); (0, 4); (0, 5); (0, 7); (2, 6); (2, 7) ]
  in
  check "dist_le(4) semantics on the path" true dist_ok

let suite =
  [
    Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
    Alcotest.test_case "disabled sink records nothing" `Quick
      test_span_disabled_records_nothing;
    Alcotest.test_case "span survives exception" `Quick
      test_span_survives_exception;
    Alcotest.test_case "chrome trace shape" `Quick test_chrome_trace_shape;
    Alcotest.test_case "counter registry is shared" `Quick
      test_counter_registry_shared;
    Alcotest.test_case "histogram percentiles" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "quantiles clamped to [min, max]" `Quick
      test_quantile_clamped_to_range;
    Alcotest.test_case "snapshot JSON round-trip" `Quick
      test_snapshot_json_roundtrip;
    Alcotest.test_case "json parser" `Quick test_json_parser;
    Alcotest.test_case "clock monotone" `Quick test_clock_monotone;
    QCheck_alcotest.to_alcotest qcheck_tracing_transparent;
    Alcotest.test_case "prenex fresh names" `Quick test_prenex_deterministic;
    Alcotest.test_case "localize fresh names" `Quick
      test_localize_avoids_endpoints;
  ]
