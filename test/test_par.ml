(* Tests for folearn.par: the fixed-size domain pool and the
   determinism contract of the parallel solver paths.

   - pool combinators: index-ordered results, chunked map/reduce equal
     to the sequential fold, lowest-indexed failure re-raised;
   - the headline property: every Erm_* solver and Preindex.build
     returns bit-identical hypotheses, errors and class assignments at
     jobs = 1, 2 and 4 (jobs = 1 runs first so the global intern
     tables are warm — ids are process-global, see par.mli);
   - budget trips (fault plans and fuel) are deterministic under
     parallelism: shared Atomic accounting makes every worker see the
     same trip. *)

open Cgraph
module Sam = Folearn.Sample
module Brute = Folearn.Erm_brute
module Counting = Folearn.Erm_counting
module Local = Folearn.Erm_local
module Real = Folearn.Erm_realizable
module Pre = Folearn.Preindex
module Hyp = Folearn.Hypothesis

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_pool ~jobs f =
  let pool = Par.Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f pool)

let sample_on g centre =
  Sam.label_with g
    ~target:(fun v -> Bfs.dist g v.(0) centre <= 1)
    (Sam.all_tuples g ~k:1)

(* ------------------------------------------------------------------ *)
(* Pool combinators                                                    *)
(* ------------------------------------------------------------------ *)

let map_tasks_index_order () =
  with_pool ~jobs:4 @@ fun pool ->
  let r = Par.map_tasks pool ~tasks:100 (fun i -> i * i) in
  check_int "length" 100 (Array.length r);
  Array.iteri (fun i v -> check_int "r.(i) = i*i" (i * i) v) r

let map_list_matches_sequential () =
  with_pool ~jobs:3 @@ fun pool ->
  let xs = List.init 57 (fun i -> i - 20) in
  let f x = (x * 31) mod 7 in
  check "map_list" true (Par.map_list pool f xs = List.map f xs)

let map_reduce_matches_fold () =
  with_pool ~jobs:4 @@ fun pool ->
  let n = 1000 in
  let total =
    Par.map_reduce_chunks pool ~n
      ~map:(fun lo hi ->
        let s = ref 0 in
        for i = lo to hi - 1 do
          s := !s + i
        done;
        !s)
      ~reduce:( + ) ~init:0 ()
  in
  check_int "sum 0..n-1" (n * (n - 1) / 2) total;
  (* chunk-order reduce: a non-commutative reduction must still see
     the chunks in index order *)
  let concat =
    Par.map_reduce_chunks pool ~n:26 ~chunk:3
      ~map:(fun lo hi -> String.init (hi - lo) (fun i -> Char.chr (65 + lo + i)))
      ~reduce:( ^ ) ~init:"" ()
  in
  check "chunks reduced in index order" true
    (concat = "ABCDEFGHIJKLMNOPQRSTUVWXYZ")

let lowest_failure_wins () =
  with_pool ~jobs:4 @@ fun pool ->
  match
    Par.run pool ~tasks:64 (fun i ->
        if i mod 2 = 1 then failwith (string_of_int i))
  with
  | () -> Alcotest.fail "expected a failure to propagate"
  | exception Failure m -> check "lowest-indexed failure re-raised" true (m = "1")

(* ------------------------------------------------------------------ *)
(* Fault isolation: bounded retries, original backtrace                *)
(* ------------------------------------------------------------------ *)

let transient_fault_retried () =
  with_pool ~jobs:4 @@ fun pool ->
  (* one task fails on its first attempt only: the bounded retry must
     absorb it and the run must complete with every result intact
     (holds at any pool size — the inline path retries too) *)
  let first = Atomic.make true in
  let r =
    Par.map_tasks pool ~tasks:32 (fun i ->
        if i = 5 && Atomic.exchange first false then failwith "transient";
        i * 2)
  in
  Array.iteri (fun i v -> check_int "results intact" (i * 2) v) r

let permanent_fault_bounded () =
  with_pool ~jobs:4 @@ fun pool ->
  let attempts = Atomic.make 0 in
  (match
     Par.run pool ~tasks:16 (fun i ->
         if i = 3 then begin
           Atomic.incr attempts;
           failwith "permanent"
         end)
   with
  | () -> Alcotest.fail "expected the permanent failure to propagate"
  | exception Failure m -> check "original exception" true (m = "permanent"));
  check_int "exactly max_attempts tries" 3 (Atomic.get attempts)

let non_retryable_single_attempt () =
  with_pool ~jobs:4 @@ fun pool ->
  let attempts = Atomic.make 0 in
  (match
     Par.run pool ~tasks:8 (fun i ->
         if i = 2 then begin
           Atomic.incr attempts;
           invalid_arg "programmer error"
         end)
   with
  | () -> Alcotest.fail "expected Invalid_argument to propagate"
  | exception Invalid_argument m ->
      check "original exception" true (m = "programmer error"));
  check_int "deterministic errors are not retried" 1 (Atomic.get attempts)

let string_contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* a named, never-inlined raiser so its frame is recognisable in the
   re-raised backtrace *)
let[@inline never] backtrace_probe_raiser () = failwith "backtrace probe"

let backtrace_preserved () =
  Printexc.record_backtrace true;
  with_pool ~jobs:4 @@ fun pool ->
  match
    Par.run pool ~tasks:8 (fun i -> if i = 4 then backtrace_probe_raiser ())
  with
  | () -> Alcotest.fail "expected the failure to propagate"
  | exception Failure _ ->
      (* raise_with_backtrace re-raises with the worker's original
         trace: the probe's frame in this file must still be visible *)
      check "worker frame survives the re-raise" true
        (string_contains (Printexc.get_backtrace ()) "test_par")

let inline_when_single () =
  (* a size-1 pool must not spawn: it runs inline on the caller *)
  with_pool ~jobs:1 @@ fun pool ->
  let self = Domain.self () in
  let r =
    Par.map_tasks pool ~tasks:8 (fun i ->
        check "inline on caller domain" true (Domain.self () = self);
        i + 1)
  in
  check_int "inline result" 8 r.(7)

(* ------------------------------------------------------------------ *)
(* parallel = sequential, for every solver and the preindex           *)
(* ------------------------------------------------------------------ *)

(* Each run_* projects a solver result onto a comparable value:
   hypothesis signature, error, and the solver's own counters
   (everything the determinism contract promises). *)

let run_brute pool g lam =
  let r = Brute.solve ~pool g ~k:1 ~ell:1 ~q:1 lam in
  (Hyp.signature r.Brute.hypothesis, r.Brute.err, r.Brute.params_tried)

let run_counting pool g lam =
  let r = Counting.solve ~pool g ~k:1 ~ell:1 ~q:1 ~tmax:2 lam in
  (Hyp.signature r.Counting.hypothesis, r.Counting.err, r.Counting.params_tried)

let run_local pool g lam =
  let r = Local.solve ~pool ~radius:1 g ~k:1 ~ell:1 ~q:1 lam in
  ( Hyp.signature r.Local.hypothesis,
    r.Local.err,
    r.Local.params_tried + (r.Local.pool_size * 1000)
    + (r.Local.vertices_touched * 1000000) )

let realizable_catalogue =
  List.map Fo.Parser.parse
    [ "exists z. E(x, z) /\\ E(z, y1)"; "E(x, y1)"; "x = y1" ]

let run_realizable pool g lam =
  match Real.solve ~pool g ~ell:1 ~catalogue:realizable_catalogue lam with
  | None -> ("(reject)", 0.0, 0)
  | Some r ->
      (* mc_calls is jobs-dependent (the block scan may speculate past
         the winner); the hypothesis and the winning index are not *)
      (Hyp.signature r.Real.hypothesis, 0.0, r.Real.formulas_tried)

let run_preindex pool g _lam =
  let idx = Pre.build ~pool g ~q:1 ~r:1 in
  let classes =
    String.concat ","
      (List.init (Graph.order g) (fun v -> string_of_int (Pre.vertex_class idx v)))
  in
  (classes, 0.0, Pre.class_count idx)

let det_prop (name, runner) =
  QCheck.Test.make ~count:6
    ~name:(Printf.sprintf "%s: jobs 1/2/4 bit-identical" name)
    QCheck.(int_range 6 14)
    (fun n ->
      let g = Gen.gnp ~seed:n ~n ~p:0.25 in
      let lam = sample_on g (n / 2) in
      (* jobs = 1 first: warms the process-global intern tables *)
      let seq = with_pool ~jobs:1 (fun pool -> runner pool g lam) in
      List.for_all
        (fun jobs -> with_pool ~jobs (fun pool -> runner pool g lam) = seq)
        [ 2; 4 ])

let det_props =
  List.map det_prop
    [
      ("erm_brute", run_brute);
      ("erm_counting", run_counting);
      ("erm_local", run_local);
      ("erm_realizable", run_realizable);
      ("preindex", run_preindex);
    ]

let nd_deterministic () =
  (* Erm_nd parallelises its BFS-ball batches; the report must not
     depend on the pool size (the search itself stays sequential) *)
  let g = Gen.random_tree ~seed:17 40 in
  let lam = sample_on g 20 in
  let run jobs =
    Par.set_jobs jobs;
    let cls = Splitter.Nowhere_dense.forests in
    let cfg =
      Folearn.Erm_nd.default_config ~radius:1 ~k:1 ~ell_star:1 ~q_star:1 cls
    in
    let rep = Folearn.Erm_nd.solve cfg g lam in
    ( Hyp.signature rep.Folearn.Erm_nd.hypothesis,
      rep.Folearn.Erm_nd.err,
      rep.Folearn.Erm_nd.branches_explored,
      List.length rep.Folearn.Erm_nd.rounds )
  in
  let seq = run 1 in
  let par = run 4 in
  Par.set_jobs 1;
  check "nd report identical at jobs 4" true (seq = par)

(* ------------------------------------------------------------------ *)
(* Deterministic budget trips under parallelism                        *)
(* ------------------------------------------------------------------ *)

let fault_trip_deterministic () =
  let g = Gen.gnp ~seed:5 ~n:24 ~p:0.2 in
  let lam = sample_on g 12 in
  let outcome jobs faults =
    with_pool ~jobs @@ fun pool ->
    match
      Brute.solve_budgeted
        ~budget:(Guard.Budget.make ~faults ())
        ~pool g ~k:1 ~ell:1 ~q:1 lam
    with
    | Guard.Complete _ -> None
    | Guard.Exhausted { reason; checkpoint; _ } -> Some (reason, checkpoint)
  in
  List.iter
    (fun cp ->
      let faults = Guard.Faults.trip_at cp ~n:10 in
      let seq = outcome 1 faults in
      check "fault plan fires" true (seq <> None);
      check
        (Printf.sprintf "trip at %s identical at jobs 4"
           (Guard.checkpoint_to_string cp))
        true
        (outcome 4 faults = seq))
    [ Guard.Solver_loop; Guard.Hintikka_build ]

let fuel_trip_deterministic () =
  (* fuel is one shared Atomic: the cap is crossed at the same total
     spend whatever the schedule, so the reason is stable (the
     reporting checkpoint may be any of the concurrent ones) *)
  let g = Gen.gnp ~seed:6 ~n:24 ~p:0.2 in
  let lam = sample_on g 12 in
  let reason_at jobs =
    with_pool ~jobs @@ fun pool ->
    match
      Brute.solve_budgeted
        ~budget:(Guard.Budget.make ~fuel:500 ())
        ~pool g ~k:1 ~ell:1 ~q:1 lam
    with
    | Guard.Complete _ -> None
    | Guard.Exhausted { reason; _ } -> Some reason
  in
  check "fuel cap trips sequentially" true (reason_at 1 = Some Guard.Out_of_fuel);
  check "fuel cap trips at jobs 4" true (reason_at 4 = Some Guard.Out_of_fuel)

let suite =
  [
    Alcotest.test_case "map_tasks returns index-ordered results" `Quick
      map_tasks_index_order;
    Alcotest.test_case "map_list = List.map" `Quick map_list_matches_sequential;
    Alcotest.test_case "map_reduce_chunks = sequential fold" `Quick
      map_reduce_matches_fold;
    Alcotest.test_case "lowest-indexed failure is re-raised" `Quick
      lowest_failure_wins;
    Alcotest.test_case "transient worker fault absorbed by retry" `Quick
      transient_fault_retried;
    Alcotest.test_case "permanent fault propagates after bounded retries"
      `Quick permanent_fault_bounded;
    Alcotest.test_case "non-retryable exceptions fail fast" `Quick
      non_retryable_single_attempt;
    Alcotest.test_case "re-raise preserves the worker backtrace" `Quick
      backtrace_preserved;
    Alcotest.test_case "jobs=1 runs inline on the caller" `Quick
      inline_when_single;
  ]
  @ List.map (fun p -> QCheck_alcotest.to_alcotest p) det_props
  @ [
      Alcotest.test_case "erm_nd report independent of jobs" `Quick
        nd_deterministic;
      Alcotest.test_case "fault plans trip deterministically under jobs 4"
        `Quick fault_trip_deterministic;
      Alcotest.test_case "fuel cap trips under jobs 4" `Quick
        fuel_trip_deterministic;
    ]
