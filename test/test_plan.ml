(* Tests for the static cost analyzer (focost, Analysis.Plan):
   - the 12-case exit-code matrix: for each solver and each suggested
     budget band {ample, tight, infeasible}, the statically predicted
     exit code (0 / 3 / 4) matches what the real budgeted run produces,
   - qcheck: the predicted catalogue cardinality exactly equals the
     Catalogue enumeration count; every envelope is monotone in q, r, n,
   - the admission precheck: rejects only provably doomed budgets,
     burns zero fuel doing so, and ~precheck:false restores the burn,
   - model_check_floor: a sound lower bound on a completed reduction,
   - pinned regressions for the lossless cost-JSON round-trip
     (saturated bounds survive serialisation; satellite fix). *)

open Cgraph
module Plan = Analysis.Plan
module CM = Analysis.Cost_model
module Count = CM.Count
module Sam = Folearn.Sample

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* The 12-case exit-code matrix                                        *)
(* ------------------------------------------------------------------ *)

(* shared configuration: path:12, phi(x1), one parameter slot, rank 1 —
   the same run `folearn learn -g path:12 -k 1 -l 1 -q 1` executes *)
let g12 = Gen.path 12
let k, ell, q = (1, 1, 1)

let lam12 =
  Sam.label_with g12 ~target:(fun v -> v.(0) mod 2 = 0) (Sam.all_tuples g12 ~k)

let tuples12 = List.map fst lam12
let inp12 = Plan.input g12 ~k ~ell ~q tuples12
let fuel_budget f = Guard.Budget.make ~fuel:f ()

let exit_of_erm = function
  | Guard.Complete _ -> 0
  | Guard.Exhausted { best_so_far = Some _; _ } -> 3
  | Guard.Exhausted { best_so_far = None; _ } -> 4

(* the CLI maps a Complete-but-degraded chain answer to exit 3 *)
let exit_of_degrade = function
  | Guard.Complete (l : Folearn.Degrade.learned) ->
      if l.Folearn.Degrade.degraded then 3 else 0
  | Guard.Exhausted { best_so_far = Some _; _ } -> 3
  | Guard.Exhausted { best_so_far = None; _ } -> 4

let case ~prediction name fuel expect run =
  match fuel with
  | None -> Alcotest.failf "%s: no fuel suggestion" name
  | Some f ->
      check_int (name ^ " actual exit") expect (run f);
      let pr = prediction (Plan.limits ~fuel:f ()) in
      check_int (name ^ " predicted exit") expect
        (Plan.exit_code pr.Plan.verdict);
      check (name ^ " certain") true pr.Plan.certain

let test_matrix_brute () =
  let p = Plan.analyze inp12 Plan.Brute in
  let s = Plan.suggest_fuel p in
  let run f =
    exit_of_erm
      (Folearn.Erm_brute.solve_budgeted ~budget:(fuel_budget f) g12 ~k ~ell ~q
         lam12)
  in
  let case = case ~prediction:(Plan.predict p) in
  case "brute ample" s.Plan.ample 0 run;
  case "brute tight" s.Plan.tight 3 run;
  case "brute infeasible" s.Plan.infeasible 4 run

let test_matrix_counting () =
  let p = Plan.analyze inp12 Plan.Counting in
  let s = Plan.suggest_fuel p in
  let run f =
    exit_of_erm
      (Folearn.Erm_counting.solve_budgeted ~budget:(fuel_budget f) g12 ~k ~ell
         ~q ~tmax:2 lam12)
  in
  let case = case ~prediction:(Plan.predict p) in
  case "counting ample" s.Plan.ample 0 run;
  case "counting tight" s.Plan.tight 3 run;
  case "counting infeasible" s.Plan.infeasible 4 run

let test_matrix_local_chain () =
  (* a budgeted --solver local run walks the degradation chain *)
  let stages = Plan.degrade_stages inp12 in
  let s = Plan.suggest_fuel_chain stages in
  let run f =
    exit_of_degrade
      (Folearn.Degrade.learn ~budget:(fuel_budget f) g12 ~k ~ell ~q lam12)
  in
  let case = case ~prediction:(Plan.predict_chain stages) in
  case "local-chain ample" s.Plan.ample 0 run;
  case "local-chain tight" s.Plan.tight 3 run;
  case "local-chain infeasible" s.Plan.infeasible 4 run

let test_matrix_nd () =
  let p = Plan.analyze inp12 Plan.Nd in
  let s = Plan.suggest_fuel p in
  let cls = Splitter.Nowhere_dense.of_graph "test" g12 in
  let cfg =
    Folearn.Erm_nd.default_config ~radius:1 ~k ~ell_star:(max 1 ell) ~q_star:q
      cls
  in
  let run f =
    exit_of_erm
      (Folearn.Erm_nd.solve_budgeted ~budget:(fuel_budget f) cfg g12 lam12)
  in
  let case = case ~prediction:(Plan.predict p) in
  case "nd ample" s.Plan.ample 0 run;
  (* the nd middle band is statically unprovable (tight = None by
     design: the branch tree's settle point has no sound upper bound
     below the total), so the matrix uses two provably-exhausted
     budgets instead *)
  check "nd tight unprovable" true (s.Plan.tight = None);
  case "nd infeasible" s.Plan.infeasible 4 run;
  case "nd zero fuel" (Some 0) 4 run

(* ------------------------------------------------------------------ *)
(* QCheck: catalogue exactness and envelope monotonicity               *)
(* ------------------------------------------------------------------ *)

let catalogue_exact_prop =
  QCheck.Test.make ~count:25
    ~name:"plan-catalogue-exact: predicted cardinality = Catalogue count"
    QCheck.(
      quad (int_range 3 10) (int_range 0 1) (int_range 0 1) (int_range 0 2))
    (fun (n, ell, q, r) ->
      let g = Gen.random_tree ~seed:(n + (7 * ell) + (13 * q) + (29 * r)) n in
      let ctx = Modelcheck.Types.make_ctx g in
      let tbl = Hashtbl.create 32 in
      List.iter
        (fun t -> Hashtbl.replace tbl (Modelcheck.Types.ltp ctx ~q ~r t) ())
        (Sam.all_tuples g ~k:(1 + ell));
      let types = Hashtbl.length tbl in
      let max_size = 64 in
      let enumerated =
        List.length (Folearn.Catalogue.of_local_types g ~ell ~q ~r ~max_size ())
      in
      match Count.to_int_opt (CM.catalogue_cardinality ~types ~max_size) with
      | Some predicted -> predicted = enumerated
      | None -> false)

let env_leq (a : CM.Env.t) (b : CM.Env.t) =
  Count.leq a.CM.Env.lo b.CM.Env.lo && Count.leq a.CM.Env.hi b.CM.Env.hi

let monotone_prop =
  QCheck.Test.make ~count:30
    ~name:"plan envelopes monotone in q, r, and n"
    QCheck.(triple (int_range 2 9) (int_range 0 1) (int_range 0 3))
    (fun (n, q, solver_idx) ->
      let solver =
        List.nth [ Plan.Brute; Plan.Local; Plan.Counting; Plan.Nd ] solver_idx
      in
      let mk n q radius =
        let g = Gen.path n in
        Plan.analyze
          (Plan.input ?radius g ~k:1 ~ell:1 ~q (Sam.all_tuples g ~k:1))
          solver
      in
      let base = mk n q None in
      let bigger_n = mk (n + 1) q None in
      let bigger_q = mk n (q + 1) None in
      let grows sel = env_leq (sel base) (sel bigger_n) && env_leq (sel base) (sel bigger_q) in
      grows (fun (p : Plan.t) -> p.Plan.fuel_total)
      && grows (fun (p : Plan.t) -> p.Plan.fuel_first)
      && grows (fun (p : Plan.t) -> p.Plan.table_total)
      && grows (fun (p : Plan.t) -> p.Plan.type_evals)
      && env_leq base.Plan.hypotheses bigger_n.Plan.hypotheses
      && env_leq (mk n q (Some 1)).Plan.fuel_total
           (mk n q (Some 2)).Plan.fuel_total)

(* ------------------------------------------------------------------ *)
(* Admission precheck behaviour                                        *)
(* ------------------------------------------------------------------ *)

let test_precheck_zero_burn () =
  let p = Plan.analyze inp12 Plan.Brute in
  let s = Plan.suggest_fuel p in
  let doomed = Option.get s.Plan.infeasible in
  (match
     Folearn.Erm_brute.solve_budgeted ~budget:(fuel_budget doomed) g12 ~k ~ell
       ~q lam12
   with
  | Guard.Exhausted { best_so_far = None; spent; _ } ->
      check_int "precheck rejection burns nothing" 0 spent.Guard.fuel
  | _ -> Alcotest.fail "provably infeasible budget must be rejected");
  (match
     Folearn.Erm_brute.solve_budgeted ~budget:(fuel_budget doomed)
       ~precheck:false g12 ~k ~ell ~q lam12
   with
  | Guard.Exhausted { best_so_far = None; spent; _ } ->
      check "precheck off: the doomed run burns real fuel" true
        (spent.Guard.fuel > 0)
  | _ -> Alcotest.fail "the doomed run must still exhaust empty");
  (* a merely tight budget is never rejected: the run proceeds and
     salvages a best-so-far answer *)
  (match
     Folearn.Erm_brute.solve_budgeted
       ~budget:(fuel_budget (Option.get s.Plan.tight))
       g12 ~k ~ell ~q lam12
   with
  | Guard.Exhausted { best_so_far = Some _; spent; _ } ->
      check "tight budget runs for real" true (spent.Guard.fuel > 0)
  | _ -> Alcotest.fail "a tight budget must salvage")

let test_precheck_rejection_is_structured () =
  let p = Plan.analyze inp12 Plan.Brute in
  let s = Plan.suggest_fuel p in
  let doomed = Option.get s.Plan.infeasible in
  match
    Plan.precheck ~what:"test" p (Plan.limits ~fuel:doomed ())
  with
  | None -> Alcotest.fail "precheck must fire on the infeasible band"
  | Some r ->
      check "resource named" true (r.Plan.resource = "fuel");
      check_int "limit echoed" doomed r.Plan.limit;
      check "rule id" true
        (r.Plan.diagnostic.Analysis.Diagnostic.rule = "budget-infeasible")

let test_precheck_never_fires_unlimited () =
  let p = Plan.analyze inp12 Plan.Brute in
  check "no limits, no rejection" true
    (Plan.precheck ~what:"test" p Plan.no_limits = None);
  (* deadlines alone are never grounds for rejection *)
  check "timeout alone never rejects" true
    (Plan.precheck ~what:"test" p (Plan.limits ~timeout_s:1e-9 ()) = None)

(* ------------------------------------------------------------------ *)
(* model_check_floor soundness                                         *)
(* ------------------------------------------------------------------ *)

let floor_sound_prop =
  QCheck.Test.make ~count:12
    ~name:"model_check_floor: fuel below the floor never completes"
    QCheck.(pair (int_range 2 6) (int_range 0 2))
    (fun (n, i) ->
      let g = Gen.path n in
      let phi =
        List.nth
          [
            Fo.Parser.parse "exists x. E(x, x)";
            Fo.Parser.parse "forall x. exists y. E(x, y)";
            Fo.Parser.parse "exists x. forall y. ~ E(x, y)";
          ]
          i
      in
      let floor = Plan.model_check_floor ~n:(Graph.order g) phi in
      floor >= 1
      &&
      match
        Folearn.Reduction.model_check_budgeted ~precheck:false
          ~budget:(fuel_budget (floor - 1))
          ~oracle:Folearn.Reduction.exact_oracle g phi
      with
      | Guard.Exhausted _ -> true
      | Guard.Complete _ -> false)

let test_model_check_precheck () =
  let g = Gen.path 6 in
  let phi = Fo.Parser.parse "exists x. exists y. E(x, y)" in
  let floor = Plan.model_check_floor ~n:(Graph.order g) phi in
  (match
     Folearn.Reduction.model_check_budgeted
       ~budget:(fuel_budget (floor - 1))
       ~oracle:Folearn.Reduction.exact_oracle g phi
   with
  | Guard.Exhausted { best_so_far = None; spent; _ } ->
      check_int "static rejection burns nothing" 0 spent.Guard.fuel
  | _ -> Alcotest.fail "sub-floor fuel must be rejected");
  match
    Folearn.Reduction.model_check_budgeted ~budget:(fuel_budget 1_000_000)
      ~oracle:Folearn.Reduction.exact_oracle g phi
  with
  | Guard.Complete (verdict, _) -> check "generous fuel decides" true verdict
  | Guard.Exhausted _ -> Alcotest.fail "generous fuel must complete"

(* ------------------------------------------------------------------ *)
(* Lossless cost JSON (pinned satellite regression)                    *)
(* ------------------------------------------------------------------ *)

let deep_formula n =
  let rec build i =
    if i > n then "E(x1, x2)"
    else Printf.sprintf "exists y%d. %s" i (build (i + 1))
  in
  Fo.Parser.parse (build 1)

let test_cost_saturation_and_roundtrip () =
  let c = Analysis.Fo_check.cost (deep_formula 25) in
  (* rank 25 overflows the towers: the bounds must REPORT saturation,
     never a clamped finite value *)
  check "hintikka saturates" true
    (c.Analysis.Fo_check.hintikka_log2 = CM.Log2.Saturated);
  check "ramsey saturates" true
    (c.Analysis.Fo_check.ramsey_r233_log2 = CM.Log2.Saturated);
  (match Analysis.Fo_check.cost_of_json (Analysis.Fo_check.cost_json c) with
  | Ok c' -> check "saturated cost round-trips losslessly" true (c = c')
  | Error m -> Alcotest.failf "round-trip failed: %s" m);
  let small = Analysis.Fo_check.cost (Fo.Parser.parse "exists y. E(x1, y)") in
  check "small rank stays finite" true
    (match small.Analysis.Fo_check.hintikka_log2 with
    | CM.Log2.Finite _ -> true
    | CM.Log2.Saturated -> false);
  match Analysis.Fo_check.cost_of_json (Analysis.Fo_check.cost_json small) with
  | Ok c' -> check "finite cost round-trips losslessly" true (small = c')
  | Error m -> Alcotest.failf "round-trip failed: %s" m

let suite =
  [
    Alcotest.test_case "matrix: brute {ample, tight, infeasible}" `Quick
      test_matrix_brute;
    Alcotest.test_case "matrix: counting {ample, tight, infeasible}" `Quick
      test_matrix_counting;
    Alcotest.test_case "matrix: local degrade chain {ample, tight, infeasible}"
      `Quick test_matrix_local_chain;
    Alcotest.test_case "matrix: nd {ample, infeasible, zero}" `Quick
      test_matrix_nd;
    QCheck_alcotest.to_alcotest catalogue_exact_prop;
    QCheck_alcotest.to_alcotest monotone_prop;
    Alcotest.test_case "precheck rejects with zero burn; escape hatch works"
      `Quick test_precheck_zero_burn;
    Alcotest.test_case "precheck rejection is structured" `Quick
      test_precheck_rejection_is_structured;
    Alcotest.test_case "precheck never fires without a provable trip" `Quick
      test_precheck_never_fires_unlimited;
    QCheck_alcotest.to_alcotest floor_sound_prop;
    Alcotest.test_case "model_check admission uses the structural floor" `Quick
      test_model_check_precheck;
    Alcotest.test_case "cost JSON is lossless, saturation reported" `Quick
      test_cost_saturation_and_roundtrip;
  ]
