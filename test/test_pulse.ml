(* Tests for the live-telemetry layer (folearn.pulse) and the sharded
   metric sink underneath it:
   - a qcheck property that per-domain shard merging loses nothing:
     the merged snapshot of a parallel run equals the sequential
     totals, at jobs 1, 2 and 4,
   - event-ring wrap-around and dump ordering,
   - FOLEARNFDR1 encode/decode round-trips and corruption rejection,
   - Prometheus exposition shape,
   - --metrics-addr address parsing,
   - an end-to-end exporter test: server on an ephemeral port, scraped
     with the in-repo client. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let with_sink f =
  Obs.enable ();
  Obs.reset_all ();
  Fun.protect ~finally:Obs.disable f

(* ------------------------------------------------------------------ *)
(* Sharded metric merging                                              *)
(* ------------------------------------------------------------------ *)

let shard_counters =
  [| Obs.Metric.counter "pulse.shard.c0"; Obs.Metric.counter "pulse.shard.c1" |]

let shard_hist = Obs.Metric.histogram "pulse.shard.h0"

(* ops: (which, amount) — which selects a counter or the histogram *)
let apply_op (which, amount) =
  let amount = 1 + (abs amount mod 50) in
  if which mod 3 < 2 then Obs.Metric.add shard_counters.(which mod 3 mod 2) amount
  else Obs.Metric.observe shard_hist (float_of_int amount)

let expected_totals ops =
  let c = Array.make 2 0 in
  let hn = ref 0 and hsum = ref 0.0 in
  List.iter
    (fun (which, amount) ->
      let amount = 1 + (abs amount mod 50) in
      if which mod 3 < 2 then
        c.(which mod 3 mod 2) <- c.(which mod 3 mod 2) + amount
      else begin
        incr hn;
        hsum := !hsum +. float_of_int amount
      end)
    ops;
  (c, !hn, !hsum)

let merged_totals () =
  let snap = Obs.Metric.snapshot () in
  let c = Array.make (Array.length shard_counters) 0 in
  c.(0) <- Obs.Metric.find_counter snap "pulse.shard.c0";
  c.(1) <- Obs.Metric.find_counter snap "pulse.shard.c1";
  match List.assoc_opt "pulse.shard.h0" snap.Obs.Metric.histograms with
  | None -> (c, 0, 0.0)
  | Some hs -> (c, hs.Obs.Metric.hs_count, hs.Obs.Metric.hs_sum)

let run_sharded ~jobs ops =
  with_sink (fun () ->
      let arr = Array.of_list ops in
      let tasks = 8 in
      let pool = Par.Pool.create ~jobs in
      Fun.protect
        ~finally:(fun () -> Par.Pool.shutdown pool)
        (fun () ->
          Par.run pool ~tasks (fun t ->
              Array.iteri (fun i op -> if i mod tasks = t then apply_op op) arr));
      merged_totals ())

let prop_shard_merge =
  QCheck.Test.make ~count:30 ~name:"sharded merge equals sequential totals"
    QCheck.(list_of_size (Gen.int_range 0 200) (pair (int_bound 5) small_int))
    (fun ops ->
      let ec, en, esum = expected_totals ops in
      List.for_all
        (fun jobs ->
          let c, n, sum = run_sharded ~jobs ops in
          c = ec && n = en && Float.abs (sum -. esum) < 1e-6)
        [ 1; 2; 4 ])

(* metric identity survives worker-domain death: totals must be read
   back from shards whose owning domain has exited *)
let test_shards_survive_pool_shutdown () =
  let c, n, _sum = run_sharded ~jobs:4 [ (0, 1); (1, 2); (2, 3); (0, 4) ] in
  let ec, en, _ = expected_totals [ (0, 1); (1, 2); (2, 3); (0, 4) ] in
  check "counters" true (c = ec);
  check_int "hist count" en n

(* ------------------------------------------------------------------ *)
(* Event ring                                                          *)
(* ------------------------------------------------------------------ *)

let test_ring_wrap () =
  Obs.Event.set_capacity 8;
  Fun.protect
    ~finally:(fun () -> Obs.Event.set_capacity Obs.Event.default_capacity)
    (fun () ->
      for i = 0 to 10 do
        Obs.Event.record ~kind:"test"
          ~args:[ ("i", string_of_int i) ]
          "ring.tick"
      done;
      check_int "total counts overwritten events" 11 (Obs.Event.total ());
      check_int "dropped = total - capacity" 3 (Obs.Event.dropped ());
      let evs = Obs.Event.dump () in
      check_int "ring keeps capacity events" 8 (List.length evs);
      let seqs = List.map (fun e -> e.Obs.Event.seq) evs in
      check "oldest-first contiguous seqs" true
        (seqs = [ 3; 4; 5; 6; 7; 8; 9; 10 ]);
      let last = List.nth evs 7 in
      check_str "payload survives" "10" (List.assoc "i" last.Obs.Event.args))

let test_event_json_roundtrip () =
  Obs.Event.reset ();
  Obs.Event.record ~kind:"guard" ~args:[ ("reason", "fuel") ] "guard.trip";
  match Obs.Event.dump () with
  | [ e ] -> (
      match Obs.Event.of_json (Obs.Event.to_json e) with
      | Ok e' -> check "event JSON round-trip" true (e = e')
      | Error m -> Alcotest.failf "of_json: %s" m)
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

(* ------------------------------------------------------------------ *)
(* Flight-recorder dump format                                         *)
(* ------------------------------------------------------------------ *)

let test_fdr_roundtrip () =
  Obs.Event.reset ();
  Obs.Event.record ~kind:"par" ~args:[ ("task", "7") ] "par.retry";
  Obs.Event.record ~kind:"resil" "resil.snapshot.save";
  let d = Pulse.Fdr.capture ~reason:"test" in
  check_int "captured both events" 2 (List.length d.Pulse.Fdr.events);
  match Pulse.Fdr.decode (Pulse.Fdr.encode d) with
  | Ok d' -> check "dump round-trip" true (d = d')
  | Error m -> Alcotest.failf "decode: %s" m

let test_fdr_rejects_corruption () =
  Obs.Event.reset ();
  Obs.Event.record ~kind:"test" "one";
  let s = Bytes.of_string (Pulse.Fdr.encode (Pulse.Fdr.capture ~reason:"t")) in
  (* flip one byte inside the JSON body: the CRC must catch it *)
  let i = Bytes.length s - 3 in
  Bytes.set s i (if Bytes.get s i = 'x' then 'y' else 'x');
  (match Pulse.Fdr.decode (Bytes.to_string s) with
  | Ok _ -> Alcotest.fail "corrupt body decoded"
  | Error _ -> ());
  match Pulse.Fdr.decode "NOTAFDRFILE" with
  | Ok _ -> Alcotest.fail "garbage decoded"
  | Error _ -> ()

let test_fdr_write_load () =
  Obs.Event.reset ();
  Obs.Event.record ~kind:"test" ~args:[ ("n", "1") ] "evt";
  let path = Filename.temp_file "folearn-fdr" ".fdr" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Pulse.Fdr.write ~path ~reason:"test.write";
      match Pulse.Fdr.load path with
      | Ok d ->
          check_str "reason" "test.write" d.Pulse.Fdr.reason;
          check_int "events" 1 (List.length d.Pulse.Fdr.events)
      | Error m -> Alcotest.failf "load: %s" m)

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)
(* ------------------------------------------------------------------ *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_prom_render () =
  with_sink (fun () ->
      Obs.Metric.add (Obs.Metric.counter "pulse.prom/test-c") 3;
      let h = Obs.Metric.histogram "pulse.prom.h" in
      Obs.Metric.observe h 2.0;
      Obs.Metric.observe h 8.0;
      let text = Pulse.Prom.render (Obs.Metric.snapshot ()) in
      (* names: sanitized, folearn_-prefixed; original kept in HELP *)
      check "counter TYPE line" true
        (contains ~needle:"# TYPE folearn_pulse_prom_test_c counter" text);
      check "counter sample" true
        (contains ~needle:"folearn_pulse_prom_test_c 3" text);
      check "original name in HELP" true
        (contains ~needle:"pulse.prom/test-c" text);
      check "histogram rendered as summary" true
        (contains ~needle:"# TYPE folearn_pulse_prom_h summary" text);
      check "p50 sample" true
        (contains ~needle:"folearn_pulse_prom_h{quantile=\"0.5\"}" text);
      check "count sample" true
        (contains ~needle:"folearn_pulse_prom_h_count 2" text);
      check "sum sample" true
        (contains ~needle:"folearn_pulse_prom_h_sum 10" text);
      check "ends with newline" true
        (String.length text > 0 && text.[String.length text - 1] = '\n'))

(* ------------------------------------------------------------------ *)
(* Address parsing                                                     *)
(* ------------------------------------------------------------------ *)

let test_addr_parse () =
  let ok spec expect =
    match Pulse.Addr.parse spec with
    | Ok a -> check ("parse " ^ spec) true (a = expect)
    | Error m -> Alcotest.failf "parse %s: %s" spec m
  in
  ok "unix:/tmp/m.sock" (Pulse.Addr.Unix_sock "/tmp/m.sock");
  ok "127.0.0.1:9100" (Pulse.Addr.Tcp ("127.0.0.1", 9100));
  ok ":0" (Pulse.Addr.Tcp ("127.0.0.1", 0));
  ok "9100" (Pulse.Addr.Tcp ("127.0.0.1", 9100));
  List.iter
    (fun bad ->
      match Pulse.Addr.parse bad with
      | Ok _ -> Alcotest.failf "parse %s: must fail" bad
      | Error _ -> ())
    [ "host:notaport"; "127.0.0.1:70000"; ""; "unix:" ]

(* ------------------------------------------------------------------ *)
(* Progress payload                                                    *)
(* ------------------------------------------------------------------ *)

let test_progress_json () =
  let j =
    Pulse.Progress.to_json
      {
        Pulse.Progress.run_id = "r";
        solver = "brute";
        frontier = 25;
        total = Some 100;
        best = Some (3, 10);
        sample_size = 200;
        fuel_spent = Some 50;
        elapsed_ns = Some 1_000_000L;
        fuel_lo = Some 40;
        fuel_hi = Some 400;
      }
  in
  let f name =
    match Obs.Json.member name j with
    | Some (Obs.Json.Float v) -> v
    | Some (Obs.Json.Int v) -> float_of_int v
    | _ -> Alcotest.failf "missing %s" name
  in
  check "frontier_frac" true (Float.abs (f "frontier_frac" -. 0.25) < 1e-9);
  check "complete_frac" true (Float.abs (f "complete_frac" -. 0.125) < 1e-9);
  check "best_err" true (Float.abs (f "best_err" -. 0.05) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Exporter end to end                                                 *)
(* ------------------------------------------------------------------ *)

let test_server_end_to_end () =
  with_sink (fun () ->
      Obs.Metric.add (Obs.Metric.counter "pulse.e2e.hits") 7;
      match Pulse.Server.start (Pulse.Addr.Tcp ("127.0.0.1", 0)) with
      | Error m -> Alcotest.failf "server start: %s" m
      | Ok srv ->
          Fun.protect
            ~finally:(fun () ->
              Pulse.Server.set_progress None;
              Pulse.Server.stop srv)
            (fun () ->
              let addr = Pulse.Server.bound_addr srv in
              (match addr with
              | Pulse.Addr.Tcp (_, p) ->
                  check "ephemeral port resolved" true (p > 0)
              | _ -> Alcotest.fail "expected a TCP bound address");
              (match Pulse.Client.get addr "/healthz" with
              | Ok body -> check_str "healthz" "ok\n" body
              | Error m -> Alcotest.failf "/healthz: %s" m);
              (match Pulse.Client.get addr "/metrics" with
              | Ok body ->
                  check "live counter exported" true
                    (contains ~needle:"folearn_pulse_e2e_hits 7" body)
              | Error m -> Alcotest.failf "/metrics: %s" m);
              (match Pulse.Client.get addr "/metrics.json" with
              | Ok body -> (
                  match Obs.Json.of_string body with
                  | Ok _ -> ()
                  | Error m -> Alcotest.failf "/metrics.json re-parse: %s" m)
              | Error m -> Alcotest.failf "/metrics.json: %s" m);
              Pulse.Server.set_progress
                (Some (fun () -> Obs.Json.Obj [ ("x", Obs.Json.Int 42) ]));
              (match Pulse.Client.get addr "/progress" with
              | Ok body -> (
                  match Obs.Json.of_string body with
                  | Ok j ->
                      check "progress sampler answers" true
                        (Obs.Json.member "x" j = Some (Obs.Json.Int 42))
                  | Error m -> Alcotest.failf "/progress re-parse: %s" m)
              | Error m -> Alcotest.failf "/progress: %s" m);
              match Pulse.Client.get addr "/nope" with
              | Ok _ -> Alcotest.fail "unknown route must 404"
              | Error _ -> ()))

(* during signal-graceful shutdown /healthz must answer 503 draining,
   so load balancers and scrape loops stop routing to a run that is
   flushing its last snapshot; the other endpoints keep answering *)
let test_healthz_draining () =
  match Pulse.Server.start (Pulse.Addr.Tcp ("127.0.0.1", 0)) with
  | Error m -> Alcotest.failf "server start: %s" m
  | Ok srv ->
      Fun.protect
        ~finally:(fun () ->
          Pulse.Server.set_draining false;
          Pulse.Server.stop srv)
        (fun () ->
          let addr = Pulse.Server.bound_addr srv in
          (match Pulse.Client.get addr "/healthz" with
          | Ok body -> check_str "healthy before drain" "ok\n" body
          | Error m -> Alcotest.failf "/healthz: %s" m);
          Pulse.Server.set_draining true;
          check "flag readable" true (Pulse.Server.draining ());
          (match Pulse.Client.get addr "/healthz" with
          | Ok body -> Alcotest.failf "draining must not be 200 (got %S)" body
          | Error m ->
              check "503 status" true (contains ~needle:"503" m);
              check "draining body" true (contains ~needle:"draining" m));
          (* only health flips; scrapers can still collect the final
             metrics during the grace period *)
          (match Pulse.Client.get addr "/metrics" with
          | Ok _ -> ()
          | Error m -> Alcotest.failf "/metrics during drain: %s" m);
          Pulse.Server.set_draining false;
          match Pulse.Client.get addr "/healthz" with
          | Ok body -> check_str "drain is reversible" "ok\n" body
          | Error m -> Alcotest.failf "/healthz after undrain: %s" m)

(* a sampler that raises must degrade to an in-band error, never take
   the exporter (or the run) down *)
let test_progress_sampler_exception () =
  match Pulse.Server.start (Pulse.Addr.Tcp ("127.0.0.1", 0)) with
  | Error m -> Alcotest.failf "server start: %s" m
  | Ok srv ->
      Fun.protect
        ~finally:(fun () ->
          Pulse.Server.set_progress None;
          Pulse.Server.stop srv)
        (fun () ->
          Pulse.Server.set_progress (Some (fun () -> failwith "boom"));
          match Pulse.Client.get (Pulse.Server.bound_addr srv) "/progress" with
          | Ok body -> check "error reported in-band" true
              (contains ~needle:"boom" body)
          | Error m -> Alcotest.failf "/progress: %s" m)

let suite =
  [
    Alcotest.test_case "shards survive pool shutdown" `Quick
      test_shards_survive_pool_shutdown;
    QCheck_alcotest.to_alcotest prop_shard_merge;
    Alcotest.test_case "event ring wraps oldest-first" `Quick test_ring_wrap;
    Alcotest.test_case "event JSON round-trip" `Quick test_event_json_roundtrip;
    Alcotest.test_case "FDR encode/decode round-trip" `Quick test_fdr_roundtrip;
    Alcotest.test_case "FDR rejects corruption" `Quick
      test_fdr_rejects_corruption;
    Alcotest.test_case "FDR write/load" `Quick test_fdr_write_load;
    Alcotest.test_case "Prometheus exposition shape" `Quick test_prom_render;
    Alcotest.test_case "address parsing" `Quick test_addr_parse;
    Alcotest.test_case "progress JSON fractions" `Quick test_progress_json;
    Alcotest.test_case "exporter end to end" `Quick test_server_end_to_end;
    Alcotest.test_case "healthz answers 503 while draining" `Quick
      test_healthz_draining;
    Alcotest.test_case "sampler exception stays in-band" `Quick
      test_progress_sampler_exception;
  ]
