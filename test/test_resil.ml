(* Tests for folearn.resil: the crash-safe checkpoint/resume layer.

   - CRC-32 against the published zlib check value;
   - a QCheck codec round-trip (decode . encode = id) plus rejection
     of corrupted bytes, truncation and a bad magic;
   - atomic save/load through a temp file, [`Not_found] on a missing
     path;
   - the Ctl frontier: out-of-order chunks park until the gap closes,
     the recorded best is lex-min monotone, and should_eval implements
     the replay-skip contract;
   - Guard integration: an interrupt becomes an [Interrupted] trip and
     the tick hook fires only under a budget;
   - in-process resume equality: a fuel-tripped solver run, resumed
     from its flushed snapshot, reproduces the uninterrupted result
     bit-identically (pool sizes 1 and 4). *)

open Cgraph
module Sam = Folearn.Sample
module Brute = Folearn.Erm_brute
module Counting = Folearn.Erm_counting
module Local = Folearn.Erm_local
module Hyp = Folearn.Hypothesis
module Snap = Resil.Snapshot

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_pool ~jobs f =
  let pool = Par.Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f pool)

let sample_on g centre =
  Sam.label_with g
    ~target:(fun v -> Bfs.dist g v.(0) centre <= 1)
    (Sam.all_tuples g ~k:1)

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)
(* ------------------------------------------------------------------ *)

let crc32_known () =
  (* the IEEE 802.3 check value: crc32("123456789") = 0xCBF43926 *)
  check "zlib check value" true
    (Resil.Crc32.to_hex (Resil.Crc32.string "123456789") = "cbf43926");
  check "empty string" true (Resil.Crc32.string "" = 0l);
  (* running continuation equals one-shot *)
  check "incremental" true
    (Resil.Crc32.string ~crc:(Resil.Crc32.string "1234") "56789"
    = Resil.Crc32.string "123456789")

(* ------------------------------------------------------------------ *)
(* Snapshot codec                                                      *)
(* ------------------------------------------------------------------ *)

let snapshot_arb =
  let open QCheck in
  let gen =
    let open Gen in
    let* run_id = string_size ~gen:printable (0 -- 40) in
    let* solver = oneofl [ "brute"; "counting"; "local"; "nd"; "mc" ] in
    let* cursor = 0 -- 10_000 in
    let* best =
      oneof [ return None; map2 (fun i e -> Some (i, e)) (0 -- 1000) (0 -- 50) ]
    in
    let* complete = bool in
    let* writes = 0 -- 500 in
    let* spent_fuel = 0 -- 1_000_000 in
    let* elapsed = map Int64.of_int (0 -- 1_000_000_000) in
    let* counters =
      list_size (0 -- 4)
        (pair (string_size ~gen:(char_range 'a' 'z') (1 -- 8)) (0 -- 9999))
    in
    return
      {
        Snap.run_id;
        solver;
        cursor;
        best;
        complete;
        writes;
        spent_fuel;
        elapsed_ns = elapsed;
        counters;
      }
  in
  QCheck.make gen

let codec_roundtrip =
  QCheck.Test.make ~count:200 ~name:"snapshot codec: decode . encode = id"
    snapshot_arb
    (fun s -> Snap.decode (Snap.encode s) = Ok s)

let sample_snapshot =
  {
    Snap.run_id = "cafe01";
    solver = "brute";
    cursor = 7;
    best = Some (3, 1);
    complete = false;
    writes = 2;
    spent_fuel = 123;
    elapsed_ns = 456789L;
    counters = [ ("erm.hypotheses_enumerated", 7) ];
  }

let corruption_rejected () =
  let enc = Snap.encode sample_snapshot in
  (* flip one body byte: the CRC must catch it *)
  let flipped =
    let b = Bytes.of_string enc in
    let i = String.index enc '{' + 2 in
    Bytes.set b i (if Bytes.get b i = 'x' then 'y' else 'x');
    Bytes.to_string b
  in
  check "flipped byte rejected" true (Result.is_error (Snap.decode flipped));
  check "truncation rejected" true
    (Result.is_error (Snap.decode (String.sub enc 0 (String.length enc - 3))));
  let bad_magic = "X" ^ String.sub enc 1 (String.length enc - 1) in
  check "bad magic rejected" true (Result.is_error (Snap.decode bad_magic));
  check "empty rejected" true (Result.is_error (Snap.decode ""))

let save_load_roundtrip () =
  let path = Filename.temp_file "folearn_resil" ".snap" in
  Snap.save ~path sample_snapshot;
  (match Snap.load path with
  | Ok s -> check "loaded = saved" true (s = sample_snapshot)
  | Error _ -> Alcotest.fail "load of a fresh save failed");
  Sys.remove path;
  (match Snap.load path with
  | Error `Not_found -> ()
  | Ok _ | Error (`Corrupt _) ->
      Alcotest.fail "missing file must load as `Not_found")

let astr_contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* [load_for] layers identity checks over [load]: a snapshot from a
   different run or solver is a structured [`Mismatch] naming the
   field with both values (the CLI renders it with a fresh-checkpoint
   hint), never a silent replay-skip of the wrong candidates. *)
let load_for_mismatch () =
  let path = Filename.temp_file "folearn_resil" ".snap" in
  Snap.save ~path sample_snapshot;
  (match Snap.load_for ~run_id:"cafe01" ~solver:"brute" path with
  | Ok s -> check "matching identity loads" true (s = sample_snapshot)
  | Error _ -> Alcotest.fail "matching identity must load");
  (match Snap.load_for ~run_id:"deadbf" ~solver:"brute" path with
  | Error (`Mismatch m) ->
      check "field names the run id" true (m.Snap.field = "run id");
      check "expected side" true (m.Snap.expected = "deadbf");
      check "found side" true (m.Snap.found = "cafe01");
      let rendered = Format.asprintf "%a" Snap.pp_mismatch m in
      check "rendering names both ids" true
        (String.length rendered > 0
        && astr_contains rendered "deadbf"
        && astr_contains rendered "cafe01")
  | Ok _ | Error (`Not_found | `Corrupt _) ->
      Alcotest.fail "wrong run id must be `Mismatch");
  (match Snap.load_for ~run_id:"cafe01" ~solver:"counting" path with
  | Error (`Mismatch m) -> check "solver mismatch" true (m.Snap.field = "solver")
  | _ -> Alcotest.fail "wrong solver must be `Mismatch");
  Sys.remove path;
  match Snap.load_for ~run_id:"cafe01" ~solver:"brute" path with
  | Error `Not_found -> ()
  | _ -> Alcotest.fail "missing file stays `Not_found through load_for"

let atomic_write_replaces () =
  let path = Filename.temp_file "folearn_resil" ".txt" in
  Resil.atomic_write ~path "first";
  Resil.atomic_write ~fsync:false ~path "second";
  let content = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  check "last write wins, whole" true (content = "second")

(* ------------------------------------------------------------------ *)
(* Ctl: frontier, best, should_eval                                    *)
(* ------------------------------------------------------------------ *)

let frontier_out_of_order () =
  let c = Resil.Ctl.create ~run_id:"t" ~solver:"s" () in
  Resil.Ctl.chunk_done c ~lo:5 ~hi:10 ~best:None;
  check_int "out-of-order chunk parks" 0 (Resil.Ctl.frontier c);
  Resil.Ctl.chunk_done c ~lo:0 ~hi:5 ~best:(Some (2, 3));
  check_int "gap closes, parked chunk absorbed" 10 (Resil.Ctl.frontier c);
  Resil.Ctl.chunk_done c ~lo:12 ~hi:14 ~best:None;
  Resil.Ctl.chunk_done c ~lo:10 ~hi:12 ~best:None;
  check_int "second gap closes" 14 (Resil.Ctl.frontier c)

let should_eval_contract () =
  let snap = { sample_snapshot with Snap.cursor = 10; best = Some (4, 2) } in
  let c = Resil.Ctl.create ~resume:snap ~run_id:"t" ~solver:"s" () in
  check "resumed" true (Resil.Ctl.resumed c);
  check_int "resume cursor" 10 (Resil.Ctl.resume_cursor c);
  check "below cursor replay-skipped" false (Resil.Ctl.should_eval c 3);
  check "recorded best re-evaluated" true (Resil.Ctl.should_eval c 4);
  check "at cursor evaluated" true (Resil.Ctl.should_eval c 10);
  check "past cursor evaluated" true (Resil.Ctl.should_eval c 11);
  check "inert evaluates everything" true
    (Resil.Ctl.should_eval Resil.Ctl.none 0)

(* ------------------------------------------------------------------ *)
(* Guard integration                                                   *)
(* ------------------------------------------------------------------ *)

let interrupt_trips () =
  Guard.clear_interrupt ();
  let outcome =
    Guard.run
      ~budget:(Guard.Budget.unlimited ())
      ~salvage:(fun () -> Some 99)
      (fun () ->
        Guard.interrupt ();
        Guard.tick Guard.Solver_loop;
        41)
  in
  (match outcome with
  | Guard.Exhausted
      { reason = Guard.Interrupted; best_so_far = Some 99; _ } ->
      ()
  | Guard.Complete _ -> Alcotest.fail "interrupt did not trip"
  | Guard.Exhausted { reason; _ } ->
      Alcotest.failf "wrong reason %s" (Guard.reason_to_string reason));
  (* the flag is sticky across the trip until cleared *)
  check "still requested" true (Guard.interrupt_requested ());
  Guard.clear_interrupt ();
  check "cleared" false (Guard.interrupt_requested ())

let hook_fires_only_under_budget () =
  let calls = ref 0 in
  Guard.set_tick_hook (Some (fun () -> incr calls));
  Fun.protect
    ~finally:(fun () -> Guard.set_tick_hook None)
    (fun () ->
      Guard.tick Guard.Solver_loop;
      check_int "unbudgeted tick skips the hook" 0 !calls;
      (match
         Guard.run
           ~budget:(Guard.Budget.unlimited ())
           ~salvage:(fun () -> None)
           (fun () ->
             Guard.tick Guard.Solver_loop;
             Guard.tick Guard.Solver_loop)
       with
      | Guard.Complete () -> ()
      | Guard.Exhausted _ -> Alcotest.fail "unlimited budget tripped");
      check_int "budgeted ticks invoke the hook" 2 !calls)

(* ------------------------------------------------------------------ *)
(* Resume equality, in process                                         *)
(* ------------------------------------------------------------------ *)

(* Run the solver to completion, measure its total fuel, re-run under
   half that fuel so it trips mid-enumeration, flush a snapshot, and
   resume: the resumed Complete result must be bit-identical. *)
let resume_reproduces ~jobs ~solver_name ~solve_budgeted ~project () =
  with_pool ~jobs @@ fun pool ->
  let g = Gen.gnp ~seed:11 ~n:12 ~p:0.25 in
  let lam = sample_on g 6 in
  let full_budget = Guard.Budget.unlimited () in
  let plain =
    match solve_budgeted ?budget:(Some full_budget) ~pool ~ckpt:Resil.Ctl.none g lam with
    | Guard.Complete r -> r
    | Guard.Exhausted _ -> Alcotest.fail "unlimited budget exhausted"
  in
  let total_fuel = (Guard.Budget.spent full_budget).Guard.fuel in
  let path = Filename.temp_file "folearn_resume" ".snap" in
  let ckpt =
    Resil.Ctl.create ~path ~every:1 ~run_id:"test" ~solver:solver_name ()
  in
  (match
     solve_budgeted
       ?budget:(Some (Guard.Budget.make ~fuel:(max 1 (total_fuel / 2)) ()))
       ~pool ~ckpt g lam
   with
  | Guard.Complete _ -> Alcotest.fail "half the fuel must trip"
  | Guard.Exhausted _ -> Resil.Ctl.flush ckpt);
  let snap =
    match Snap.load path with
    | Ok s -> s
    | Error _ -> Alcotest.fail "no snapshot after the tripped run"
  in
  let ckpt2 =
    Resil.Ctl.create ~path ~resume:snap ~run_id:"test" ~solver:solver_name ()
  in
  let resumed =
    match solve_budgeted ?budget:None ~pool ~ckpt:ckpt2 g lam with
    | Guard.Complete r -> r
    | Guard.Exhausted _ -> Alcotest.fail "resumed run exhausted"
  in
  Sys.remove path;
  check
    (Printf.sprintf "%s resumed = uninterrupted (jobs %d)" solver_name jobs)
    true
    (project resumed = project plain)

let resume_brute ~jobs =
  resume_reproduces ~jobs ~solver_name:"brute"
    ~solve_budgeted:(fun ?budget ~pool ~ckpt g lam ->
      Brute.solve_budgeted ?budget ~pool ~ckpt g ~k:1 ~ell:1 ~q:1 lam)
    ~project:(fun (r : Brute.result) ->
      (Hyp.signature r.Brute.hypothesis, r.Brute.err, r.Brute.params_tried))

let resume_counting ~jobs =
  resume_reproduces ~jobs ~solver_name:"counting"
    ~solve_budgeted:(fun ?budget ~pool ~ckpt g lam ->
      Counting.solve_budgeted ?budget ~pool ~ckpt g ~k:1 ~ell:1 ~q:1 ~tmax:2
        lam)
    ~project:(fun (r : Counting.result) ->
      ( Hyp.signature r.Counting.hypothesis,
        r.Counting.err,
        r.Counting.params_tried ))

let resume_local ~jobs =
  resume_reproduces ~jobs ~solver_name:"local"
    ~solve_budgeted:(fun ?budget ~pool ~ckpt g lam ->
      Local.solve_budgeted ?budget ~pool ~radius:1 ~ckpt g ~k:1 ~ell:1 ~q:1
        lam)
    ~project:(fun (r : Local.result) ->
      ( Hyp.signature r.Local.hypothesis,
        r.Local.err,
        (r.Local.params_tried, r.Local.pool_size) ))

let suite =
  [
    Alcotest.test_case "crc32 matches zlib" `Quick crc32_known;
    QCheck_alcotest.to_alcotest codec_roundtrip;
    Alcotest.test_case "corrupt snapshots rejected" `Quick corruption_rejected;
    Alcotest.test_case "save/load round-trip and `Not_found" `Quick
      save_load_roundtrip;
    Alcotest.test_case "load_for flags run/solver mismatch" `Quick
      load_for_mismatch;
    Alcotest.test_case "atomic_write replaces whole files" `Quick
      atomic_write_replaces;
    Alcotest.test_case "frontier absorbs out-of-order chunks" `Quick
      frontier_out_of_order;
    Alcotest.test_case "should_eval replay-skip contract" `Quick
      should_eval_contract;
    Alcotest.test_case "interrupt trips as Interrupted" `Quick interrupt_trips;
    Alcotest.test_case "tick hook fires only under a budget" `Quick
      hook_fires_only_under_budget;
    Alcotest.test_case "brute resume = uninterrupted (jobs 1)" `Quick
      (resume_brute ~jobs:1);
    Alcotest.test_case "brute resume = uninterrupted (jobs 4)" `Quick
      (resume_brute ~jobs:4);
    Alcotest.test_case "counting resume = uninterrupted (jobs 1)" `Quick
      (resume_counting ~jobs:1);
    Alcotest.test_case "local resume = uninterrupted (jobs 1)" `Quick
      (resume_local ~jobs:1);
  ]
