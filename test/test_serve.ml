(* Tests for folearn.serve: the resident learning service.

   - a QCheck FOLEARNRPC1 codec round-trip (decode . encode = id) plus
     rejection of truncated frames, CRC corruption, a bad magic and
     frames past the size cap — mirroring the lease codec suite;
   - socket framing over a socketpair, including the SIGPIPE/EPIPE
     regression: writing a frame into a peer-closed socket is a clean
     [Error], not a signal or an exception;
   - request/response protocol round-trip and the status/exit-code
     taxonomy mapping;
   - tenant quota parsing and component-wise budget clamping;
   - the bounded queue: FIFO pop, earliest-deadline shedding under
     pressure, closed-queue drain semantics;
   - the durable job table: persistence across reloads, pending
     recovery, and the structured snapshot-mismatch path;
   - in-engine op execution: warm repeat runs byte-identical, usage
     errors as exit 2, admission precheck rejections. *)

module J = Obs.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let temp_dir () =
  let path = Filename.temp_file "folearn_serve_test" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Frame codec                                                         *)
(* ------------------------------------------------------------------ *)

let json_arb =
  let open QCheck in
  let gen =
    let open Gen in
    let scalar =
      oneof
        [
          return J.Null;
          map (fun b -> J.Bool b) bool;
          map (fun i -> J.Int i) int;
          map (fun s -> J.String s) (string_size ~gen:printable (0 -- 24));
        ]
    in
    let key = string_size ~gen:(char_range 'a' 'z') (1 -- 8) in
    let* members = list_size (0 -- 6) (pair key scalar) in
    let* extra = list_size (0 -- 4) scalar in
    return (J.Obj (("payload", J.List extra) :: members))
  in
  QCheck.make ~print:J.to_string gen

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"frame codec round-trip" ~count:300 json_arb
    (fun j -> Serve.Frame.decode (Serve.Frame.encode j) = Ok j)

let test_frame_rejects_corruption () =
  let frame = Serve.Frame.encode (J.Obj [ ("op", J.String "ping") ]) in
  (* flip one body byte: the CRC must catch it *)
  let body_at = String.length frame - 3 in
  let corrupt = Bytes.of_string frame in
  Bytes.set corrupt body_at
    (Char.chr (Char.code (Bytes.get corrupt body_at) lxor 1));
  (match Serve.Frame.decode (Bytes.to_string corrupt) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "CRC-corrupted frame must not decode");
  (* truncation at every prefix length *)
  for len = 0 to String.length frame - 1 do
    match Serve.Frame.decode (String.sub frame 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncated frame (%d bytes) must not decode" len
  done;
  (* a foreign magic *)
  let bad = "FOLEARNXXX1" ^ String.sub frame 11 (String.length frame - 11) in
  match Serve.Frame.decode bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic must not decode"

let test_frame_size_cap () =
  let big = J.Obj [ ("blob", J.String (String.make 4096 'x')) ] in
  let frame = Serve.Frame.encode big in
  (match Serve.Frame.decode ~max_len:1024 frame with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized frame must be refused");
  match Serve.Frame.decode frame with
  | Ok j -> check "cap-free decode round-trips" true (j = big)
  | Error m -> Alcotest.failf "in-cap frame must decode: %s" m

(* ------------------------------------------------------------------ *)
(* Socket framing and the EPIPE regression                             *)
(* ------------------------------------------------------------------ *)

let test_frame_over_socketpair () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      try Unix.close b with _ -> ())
    (fun () ->
      let doc = J.Obj [ ("n", J.Int 42); ("s", J.String "x:y\nz") ] in
      (match Serve.Frame.write a doc with
      | Ok () -> ()
      | Error m -> Alcotest.failf "write failed: %s" m);
      match Serve.Frame.read b with
      | Ok j -> check "socket round-trip" true (j = doc)
      | Error _ -> Alcotest.fail "read failed")

let test_write_to_closed_peer_is_clean () =
  (* the serve loop ignores SIGPIPE process-wide; with the peer gone a
     frame write must surface as Error, never a signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close b;
  Fun.protect
    ~finally:(fun () -> try Unix.close a with _ -> ())
    (fun () ->
      let big = J.Obj [ ("blob", J.String (String.make 1_000_000 'y')) ] in
      let rec drive n =
        if n > 16 then Alcotest.fail "write into closed peer never errored"
        else
          match Serve.Frame.write a big with
          | Error _ -> ()
          | Ok () -> drive (n + 1)
      in
      drive 0)

let test_read_closed_peer_is_eof () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close a;
  Fun.protect
    ~finally:(fun () -> try Unix.close b with _ -> ())
    (fun () ->
      match Serve.Frame.read b with
      | Error `Eof -> ()
      | Ok _ | Error (`Error _) ->
          Alcotest.fail "reading a closed peer must be Eof")

let test_mid_frame_disconnect_is_error () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let frame = Serve.Frame.encode (J.Obj [ ("op", J.String "ping") ]) in
  let half = String.length frame / 2 in
  ignore (Unix.write_substring a frame 0 half);
  Unix.close a;
  Fun.protect
    ~finally:(fun () -> try Unix.close b with _ -> ())
    (fun () ->
      match Serve.Frame.read b with
      | Error (`Error _) -> ()
      | Error `Eof -> Alcotest.fail "mid-frame close must not look like Eof"
      | Ok _ -> Alcotest.fail "half a frame must not decode")

(* ------------------------------------------------------------------ *)
(* Protocol round-trip and taxonomy                                    *)
(* ------------------------------------------------------------------ *)

let test_request_roundtrip () =
  let req =
    {
      Serve.Proto.tenant = "alice";
      op = "learn";
      budget =
        {
          Serve.Proto.fuel = Some 100;
          deadline_s = Some 1.5;
          max_table = None;
          max_ball = Some 32;
        };
      params = J.Obj [ ("graph", J.String "path:4") ];
    }
  in
  match Serve.Proto.request_of_json (Serve.Proto.request_to_json req) with
  | Ok r -> check "request round-trip" true (r = req)
  | Error m -> Alcotest.failf "request must round-trip: %s" m

let test_status_taxonomy () =
  check_str "0 is complete" "complete" (Serve.Proto.status_of_code 0);
  check_str "3 is degraded" "degraded" (Serve.Proto.status_of_code 3);
  check_str "4 is exhausted" "exhausted" (Serve.Proto.status_of_code 4);
  check_int "complete exits 0" 0 (Serve.Proto.code_of_status "complete");
  check_int "degraded exits 3" 3 (Serve.Proto.code_of_status "degraded");
  check_int "exhausted exits 4" 4 (Serve.Proto.code_of_status "exhausted");
  check_int "overloaded is retryable" Serve.Proto.exit_retry
    (Serve.Proto.code_of_status "overloaded");
  check_int "draining is retryable" Serve.Proto.exit_retry
    (Serve.Proto.code_of_status "draining");
  let r = Serve.Proto.job_mismatch ~field:"run id" ~expected:"a" ~found:"b" in
  check_str "mismatch status" "job_mismatch" (Serve.Proto.resp_status r);
  check_int "mismatch is a usage error" 2 (Serve.Proto.resp_code r)

(* ------------------------------------------------------------------ *)
(* Tenant quotas                                                       *)
(* ------------------------------------------------------------------ *)

let test_tenant_parse_and_clamp () =
  let name, q =
    match Serve.Tenant.parse "alice:fuel=100,deadline=2.5,table=10,ball=5" with
    | Ok kv -> kv
    | Error m -> Alcotest.failf "quota must parse: %s" m
  in
  check_str "tenant name" "alice" name;
  check "fuel quota" true (q.Serve.Tenant.t_fuel = Some 100);
  check "deadline quota" true (q.Serve.Tenant.t_deadline_s = Some 2.5);
  (match Serve.Tenant.parse "bob:fuel=-1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative quota must not parse");
  let tenants = Serve.Tenant.make [ (name, q); ("*", q) ] in
  let ask =
    {
      Serve.Proto.fuel = Some 1_000_000;
      deadline_s = Some 0.5;
      max_table = Some 3;
      max_ball = None;
    }
  in
  let clamped = Serve.Tenant.clamp (Serve.Tenant.quota_for tenants "alice") ask in
  check "fuel clamped to quota" true (clamped.Serve.Proto.fuel = Some 100);
  check "smaller deadline kept" true
    (clamped.Serve.Proto.deadline_s = Some 0.5);
  check "smaller table kept" true (clamped.Serve.Proto.max_table = Some 3);
  check "ball quota applies" true (clamped.Serve.Proto.max_ball = Some 5);
  (* the * wildcard catches unlisted tenants *)
  let wild = Serve.Tenant.clamp (Serve.Tenant.quota_for tenants "mallory") ask in
  check "wildcard clamps too" true (wild.Serve.Proto.fuel = Some 100);
  (* and with no wildcard, unlisted tenants are unrestricted *)
  let open_t = Serve.Tenant.make [ (name, q) ] in
  let free = Serve.Tenant.clamp (Serve.Tenant.quota_for open_t "mallory") ask in
  check "no wildcard: client asks pass" true
    (free.Serve.Proto.fuel = Some 1_000_000)

(* ------------------------------------------------------------------ *)
(* Bounded queue                                                       *)
(* ------------------------------------------------------------------ *)

let entry ~seq ?deadline_ns ~shed () =
  {
    Serve.Sched.e_seq = seq;
    e_tenant = "t";
    e_deadline_ns = deadline_ns;
    e_run = (fun () -> ());
    e_shed = shed;
  }

let test_sched_fifo_and_shed () =
  let q = Serve.Sched.create ~cap:2 in
  let shed = ref [] in
  let mk seq deadline_ns =
    entry ~seq ?deadline_ns ~shed:(fun () -> shed := seq :: !shed) ()
  in
  check "push 1" true (Serve.Sched.push q (mk 1 (Some 900L)) = `Queued);
  check "push 2" true (Serve.Sched.push q (mk 2 (Some 100L)) = `Queued);
  (* full; entry 2 has the earliest deadline, so it is the victim *)
  check "push 3 evicts a queued entry" true
    (Serve.Sched.push q (mk 3 None) = `Queued);
  check "earliest deadline shed" true (!shed = [ 2 ]);
  (* full again; the incoming earliest-deadline entry sheds itself *)
  check "incoming victim" true
    (Serve.Sched.push q (mk 4 (Some 50L)) = `Shed_incoming);
  (* pop order is arrival order of the survivors *)
  let pop_seq () =
    match Serve.Sched.pop q with
    | Some e -> e.Serve.Sched.e_seq
    | None -> -1
  in
  check_int "first survivor" 1 (pop_seq ());
  check_int "second survivor" 3 (pop_seq ());
  check_int "queue drained" 0 (Serve.Sched.depth q)

let test_sched_close_drains () =
  let q = Serve.Sched.create ~cap:4 in
  check "queued before close" true
    (Serve.Sched.push q (entry ~seq:1 ~shed:ignore ()) = `Queued);
  Serve.Sched.close q;
  check "closed refuses pushes" true
    (Serve.Sched.push q (entry ~seq:2 ~shed:ignore ()) = `Closed);
  check "accepted work still pops" true (Serve.Sched.pop q <> None);
  check "then the queue reports empty" true (Serve.Sched.pop q = None)

(* ------------------------------------------------------------------ *)
(* Durable job table                                                   *)
(* ------------------------------------------------------------------ *)

let submit_job jobs ~id =
  Serve.Jobs.submit jobs ~id ~tenant:"t" ~solver:"brute"
    ~params:(J.Obj [ ("graph", J.String "path:4") ])
    ~fuel:None ~max_table:None ~max_ball:None

let test_jobs_persist_and_resume () =
  with_dir (fun dir ->
      let jobs = Serve.Jobs.load ~dir in
      (match submit_job jobs ~id:"aaa" with
      | `New _ -> ()
      | `Existing _ -> Alcotest.fail "first submit must be new");
      (match submit_job jobs ~id:"aaa" with
      | `Existing _ -> ()
      | `New _ -> Alcotest.fail "resubmit must be idempotent");
      ignore (submit_job jobs ~id:"bbb");
      Serve.Jobs.mark_done jobs "bbb" ~code:0 ~stdout:"out" ~stderr:""
        ~spent:J.Null;
      (* a different incarnation sees the same table *)
      let jobs2 = Serve.Jobs.load ~dir in
      check_int "one job still pending" 1
        (List.length (Serve.Jobs.pending jobs2));
      match Serve.Jobs.get jobs2 "bbb" with
      | Some j ->
          check "done survives reload" true (j.Serve.Jobs.j_status = Done);
          check_str "stdout survives reload" "out" j.Serve.Jobs.j_stdout
      | None -> Alcotest.fail "job lost across reload")

let test_jobs_snapshot_mismatch () =
  with_dir (fun dir ->
      let jobs = Serve.Jobs.load ~dir in
      let j =
        match submit_job jobs ~id:"ccc" with
        | `New j | `Existing j -> j
      in
      (* squat a foreign snapshot on this job's path *)
      Resil.Snapshot.save
        ~path:(Serve.Jobs.snap_path jobs "ccc")
        {
          Resil.Snapshot.run_id = "zzz";
          solver = "brute";
          cursor = 7;
          best = None;
          complete = false;
          writes = 1;
          spent_fuel = 0;
          elapsed_ns = 0L;
          counters = [];
        };
      check "foreign snapshot is not resumed" true
        (Serve.Jobs.resume_snapshot jobs j = None);
      match Serve.Jobs.get jobs "ccc" with
      | Some { Serve.Jobs.j_mismatch = Some m; _ } ->
          check_str "mismatching field" "run id" m.Resil.Snapshot.field;
          check_str "expected our id" "ccc" m.expected;
          check_str "found the squatter" "zzz" m.found
      | _ -> Alcotest.fail "mismatch must be recorded on the job")

(* ------------------------------------------------------------------ *)
(* Engine op execution                                                 *)
(* ------------------------------------------------------------------ *)

let types_params = J.Obj [ ("graph", J.String "path:5"); ("q", J.Int 1) ]

let test_run_op_warm_identical () =
  let r1 = Serve.Exec.run_op ~op:"types" ~params:types_params () in
  let r2 = Serve.Exec.run_op ~op:"types" ~params:types_params () in
  check_int "types completes" 0 r1.Serve.Exec.code;
  check "types prints" true (String.length r1.Serve.Exec.out > 0);
  check_str "warm repeat is byte-identical" r1.Serve.Exec.out
    r2.Serve.Exec.out

let test_run_op_usage () =
  let r = Serve.Exec.run_op ~op:"types" ~params:(J.Obj []) () in
  check_int "missing graph is a usage error" 2 r.Serve.Exec.code;
  check "usage names the parameter" true
    (let err = r.Serve.Exec.err in
     String.length err > 0
     &&
     let has_sub needle =
       let n = String.length needle and l = String.length err in
       let rec go i = i + n <= l && (String.sub err i n = needle || go (i + 1)) in
       go 0
     in
     has_sub "graph")

let test_precheck_rejects_tiny_fuel () =
  let params =
    J.Obj
      [
        ("graph", J.String "path:6");
        ("target", J.String "E(x1,x2)");
        ("k", J.Int 2);
        ("q", J.Int 1);
      ]
  in
  let limits =
    {
      Analysis.Plan.fuel = Some 2;
      timeout_s = None;
      max_table = None;
      max_ball = None;
    }
  in
  match Serve.Exec.precheck_rejection ~op:"learn" ~params ~limits with
  | Ok (Some r) ->
      check_str "fuel is the short resource" "fuel" r.Analysis.Plan.resource
  | Ok None -> Alcotest.fail "fuel 2 must be rejected at admission"
  | Error m -> Alcotest.failf "precheck must not fail: %s" m

let test_learn_identity_deterministic () =
  let params =
    J.Obj
      [
        ("graph", J.String "path:6");
        ("target", J.String "E(x1,x2)");
        ("k", J.Int 2);
      ]
  in
  match
    ( Serve.Exec.learn_identity params,
      Serve.Exec.learn_identity params,
      Serve.Exec.learn_identity (J.Obj [ ("graph", J.String "path:6") ]) )
  with
  | Ok (id1, solver), Ok (id2, _), Error _ ->
      check_str "identity is deterministic" id1 id2;
      check_str "solver defaults to brute" "brute" solver
  | Ok _, Ok _, Ok _ -> Alcotest.fail "target is required"
  | Error m, _, _ | _, Error m, _ ->
      Alcotest.failf "identity must compute: %s" m

let suite =
  [
    QCheck_alcotest.to_alcotest prop_frame_roundtrip;
    Alcotest.test_case "frame rejects corruption" `Quick
      test_frame_rejects_corruption;
    Alcotest.test_case "frame size cap" `Quick test_frame_size_cap;
    Alcotest.test_case "frame over socketpair" `Quick
      test_frame_over_socketpair;
    Alcotest.test_case "EPIPE on write is a clean error" `Quick
      test_write_to_closed_peer_is_clean;
    Alcotest.test_case "closed peer reads as Eof" `Quick
      test_read_closed_peer_is_eof;
    Alcotest.test_case "mid-frame disconnect is an error" `Quick
      test_mid_frame_disconnect_is_error;
    Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
    Alcotest.test_case "status taxonomy" `Quick test_status_taxonomy;
    Alcotest.test_case "tenant parse and clamp" `Quick
      test_tenant_parse_and_clamp;
    Alcotest.test_case "queue FIFO and deadline shedding" `Quick
      test_sched_fifo_and_shed;
    Alcotest.test_case "closed queue drains" `Quick test_sched_close_drains;
    Alcotest.test_case "jobs persist across reload" `Quick
      test_jobs_persist_and_resume;
    Alcotest.test_case "job snapshot mismatch is structured" `Quick
      test_jobs_snapshot_mismatch;
    Alcotest.test_case "warm repeat op is byte-identical" `Quick
      test_run_op_warm_identical;
    Alcotest.test_case "op usage errors exit 2" `Quick test_run_op_usage;
    Alcotest.test_case "admission precheck rejects tiny fuel" `Quick
      test_precheck_rejects_tiny_fuel;
    Alcotest.test_case "learn identity is deterministic" `Quick
      test_learn_identity_deterministic;
  ]
